"""Development-environment scenes (Table X) and the Spring chains of
Table XI.

Five scenes mirror §IV-D: the Spring framework, JDK8, and the three
middlewares (Tomcat, Jetty, Apache Dubbo).  Each scene is a set of jars
whose analysis yields a mix of *effective* chains (confirmed by the PoC
oracle) and conditional fakes, reproducing the per-scene FPR column.

The Spring scene embeds the Table XI material: the two new
``LazyInitTargetSource`` / ``PrototypeTargetSource`` JNDI-injection
chains and the CVE-2020-11619-style ``SimpleBeanTargetSource`` chain,
all flowing through ``SimpleJndiBeanFactory.getBean(String)`` ->
``JndiLocatorSupport.lookup()`` -> ``javax.naming.Context.lookup()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.corpus.jdk import build_jdk8_extras, build_lang_base
from repro.corpus.patterns import emit_sink, plant_guard_decoy, plant_interface_chain
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE, JavaClass

__all__ = ["SceneSpec", "SCENE_BUILDERS", "build_scene", "TABLE_XI_TARGET_SOURCES"]

#: the Table XI getTarget() implementations (chain heads after the source)
TABLE_XI_TARGET_SOURCES = [
    "org.springframework.aop.target.LazyInitTargetSource",
    "org.springframework.aop.target.PrototypeTargetSource",
    "org.springframework.aop.target.SimpleBeanTargetSource",  # CVE-2020-11619
]


@dataclass
class SceneSpec:
    """One Table X row: a named environment with its jars."""

    name: str
    version: str
    classes: List[JavaClass]
    #: how many guard-broken fakes were planted (sanity for tests)
    planted_fakes: int = 0
    #: how many effective chains are planted/expected (sanity for tests)
    expected_effective: int = 0

    @property
    def jar_count(self) -> int:
        return len({c.jar_name for c in self.classes if c.jar_name})

    def code_size_bytes(self) -> int:
        from repro.jvm import jasm

        return sum(len(jasm.dump_class(c).encode()) for c in self.classes)


def _spring_jndi_family(pb: ProgramBuilder) -> None:
    """The Table XI chains.

    readObject -> TargetSource.getTarget (interface dispatch) ->
    {LazyInit,Prototype,SimpleBean}TargetSource.getTarget ->
    SimpleJndiBeanFactory.getBean(String) ->
    JndiLocatorSupport.lookup() -> Context.lookup().
    """
    ts = "org.springframework.aop.TargetSource"
    ib = pb.interface(ts)
    ib.abstract_method("getTarget", returns="java.lang.Object")
    ib.finish()

    with pb.cls("org.springframework.jndi.JndiLocatorSupport") as c:
        c.field("jndiTemplate", "java.lang.Object")
        with c.method("lookup", params=["java.lang.Object"], returns="java.lang.Object") as m:
            emit_sink(m, "context_lookup", m.param(1))
            m.ret(m.param(1))

    with pb.cls(
        "org.springframework.jndi.support.SimpleJndiBeanFactory",
        extends="org.springframework.jndi.JndiLocatorSupport",
        implements=[SERIALIZABLE],
    ) as c:
        with c.method("getBean", params=["java.lang.String"], returns="java.lang.Object") as m:
            out = m.invoke(
                m.this,
                "org.springframework.jndi.JndiLocatorSupport",
                "lookup",
                [m.param(1)],
                returns="java.lang.Object",
            )
            m.ret(out)

    for impl in TABLE_XI_TARGET_SOURCES:
        with pb.cls(impl, implements=[ts, SERIALIZABLE]) as c:
            c.field("beanFactory", "java.lang.Object")
            c.field("targetBeanName", "java.lang.String")
            with c.method("getTarget", returns="java.lang.Object") as m:
                bf = m.get_field(m.this, "beanFactory")
                name = m.get_field(m.this, "targetBeanName")
                out = m.invoke(
                    bf,
                    "org.springframework.jndi.support.SimpleJndiBeanFactory",
                    "getBean",
                    [name],
                    returns="java.lang.Object",
                )
                m.ret(out)

    with pb.cls(
        "org.springframework.aop.framework.AdvisedSupport", implements=[SERIALIZABLE]
    ) as c:
        c.field("targetSource", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            m.invoke(m.param(1), "java.io.ObjectInputStream", "defaultReadObject")
            t = m.get_field(m.this, "targetSource")
            m.invoke_interface(t, ts, "getTarget", returns="java.lang.Object")


def build_spring_scene() -> SceneSpec:
    """Spring 2.4.3 scene: 7 effective chains, 3 fakes (Table X row 1)."""
    classes = build_lang_base()

    aop = ProgramBuilder(jar="spring-aop-5.3.4.jar")
    _spring_jndi_family(aop)  # 3 effective JNDI chains (Table XI)
    plant_guard_decoy(
        aop,
        "org.springframework.aop.framework.ProxyProcessorSupport",
        "org.springframework.aop.AopInfrastructure",
    )
    classes += aop.build()

    tx = ProgramBuilder(jar="spring-tx-5.3.4.jar")
    plant_interface_chain(
        tx,
        iface="org.springframework.transaction.TransactionOperations",
        impl="org.springframework.transaction.support.TransactionTemplate",
        source="org.springframework.transaction.jta.JtaTransactionManager",
        sink_key="method_invoke",
        method="executeCallback",
        payload_field="transactionManagerMethod",
    )
    plant_guard_decoy(
        tx,
        "org.springframework.transaction.support.DefaultTransactionStatus",
        "org.springframework.transaction.TxInfrastructure",
    )
    classes += tx.build()

    core = ProgramBuilder(jar="spring-core-5.3.4.jar")
    plant_interface_chain(
        core,
        iface="org.springframework.core.io.ResourceLoader",
        impl="org.springframework.core.io.DefaultResourceLoader",
        source="org.springframework.core.serializer.DefaultDeserializer",
        sink_key="load_class",
        method="resolveResource",
        payload_field="classLoaderName",
    )
    plant_guard_decoy(
        core,
        "org.springframework.core.convert.support.GenericConversionService",
        "org.springframework.core.SpringCoreInfrastructure",
    )
    classes += core.build()

    logback = ProgramBuilder(jar="logback-core-1.2.3.jar")
    plant_interface_chain(
        logback,
        iface="ch.qos.logback.core.spi.AppenderAttachable",
        impl="ch.qos.logback.core.FileAppender",
        source="ch.qos.logback.core.util.COWArrayList",
        sink_key="new_output_stream",
        method="appendFile",
        payload_field="fileName",
    )
    plant_interface_chain(
        logback,
        iface="ch.qos.logback.core.spi.ContextAware",
        impl="ch.qos.logback.core.net.SocketConnector",
        source="ch.qos.logback.core.net.server.RemoteReceiverClient",
        sink_key="get_by_name",
        method="connectHost",
        payload_field="remoteHost",
    )
    classes += logback.build()

    return SceneSpec("Spring", "2.4.3", classes, planted_fakes=3, expected_effective=7)


def build_jdk8_scene() -> SceneSpec:
    """JDK8 (8u242) scene: 10 effective chains (five of the XStream-
    blacklist-bypass family), 3 fakes (Table X row 2)."""
    classes = build_lang_base() + build_jdk8_extras()  # URLDNS: 2 effective

    swing = ProgramBuilder(jar="rt-swing.jar")
    # BadAttributeValueExpException-style toString chain
    plant_interface_chain(
        swing,
        iface="javax.swing.event.DocumentListener",
        impl="javax.swing.text.DefaultStyledDocument$ElementBuffer",
        source="javax.management.BadAttributeValueExpException",
        sink_key="method_invoke",
        method="documentChanged",
        source_method="toString",
        payload_field="valObj",
    )
    plant_guard_decoy(
        swing, "javax.swing.UIDefaults", "javax.swing.SwingConfiguration"
    )
    classes += swing.build()

    xstream = ProgramBuilder(jar="xstream-1.4.15.jar")
    # the XStream blacklist-bypass family: 5 chains (1 known + 4 CVEs)
    bypass = [
        ("com.thoughtworks.xstream.core.util.CustomObjectInputStream", "readResolve", "method_invoke", "callback"),
        ("com.sun.xml.internal.ws.util.ByteArrayDataSource", "readObject", "new_output_stream", "streamHandler"),  # CVE-2021-21346
        ("com.sun.corba.se.impl.activation.ServerTableEntry", "readObject", "exec", "activationCmd"),  # CVE-2021-21351
        ("jdk.nashorn.internal.objects.NativeJavaImporter", "readObject", "script_eval", "evaluator"),  # CVE-2021-39147
        ("com.sun.jndi.rmi.registry.BindingEnumeration", "readObject", "registry_lookup", "registryAccessor"),  # CVE-2021-39152
    ]
    for i, (source, source_method, sink, payload) in enumerate(bypass):
        plant_interface_chain(
            xstream,
            iface=f"com.thoughtworks.xstream.converters.Converter{i}",
            impl=f"com.thoughtworks.xstream.converters.reflection.ReflectionConverter{i}",
            source=source,
            sink_key=sink,
            method="unmarshal",
            source_method=source_method,
            payload_field=payload,
        )
    classes += xstream.build()

    misc = ProgramBuilder(jar="rt-misc.jar")
    plant_interface_chain(
        misc,
        iface="sun.rmi.server.Dispatcher",
        impl="sun.rmi.server.UnicastServerRef",
        source="sun.rmi.server.ActivationGroupImpl",
        sink_key="method_invoke",
        method="dispatchCall",
        payload_field="activationMethod",
    )
    plant_interface_chain(
        misc,
        iface="com.sun.jndi.ldap.LdapCtxFactory",
        impl="com.sun.jndi.ldap.LdapCtx",
        source="com.sun.jndi.ldap.LdapAttribute",
        sink_key="context_lookup",
        method="resolveBaseCtx",
        payload_field="baseCtxURL",
    )
    plant_guard_decoy(misc, "sun.misc.ProxyGenerator", "sun.misc.VMSupport")
    plant_guard_decoy(misc, "com.sun.jndi.dns.DnsContext", "sun.misc.VMSupport")
    classes += misc.build()

    return SceneSpec("JDK8", "8u242", classes, planted_fakes=3, expected_effective=10)


def build_tomcat_scene() -> SceneSpec:
    """Tomcat 8.5.47 scene: 3 effective, 1 fake (Table X row 3)."""
    classes = build_lang_base()
    pb = ProgramBuilder(jar="catalina-8.5.47.jar")
    plant_interface_chain(
        pb,
        iface="org.apache.catalina.session.Store",
        impl="org.apache.catalina.session.FileStore",
        source="org.apache.catalina.session.StandardSession",
        sink_key="new_output_stream",
        method="persistSession",
        payload_field="storePath",
    )
    plant_interface_chain(
        pb,
        iface="org.apache.juli.logging.Log",
        impl="org.apache.juli.FileHandler",
        source="org.apache.juli.AsyncFileHandler",
        sink_key="file_delete",
        method="rotate",
        payload_field="logFile",
    )
    plant_guard_decoy(
        pb, "org.apache.catalina.core.StandardContext", "org.apache.catalina.Globals"
    )
    classes += pb.build()
    el = ProgramBuilder(jar="jasper-el-8.5.47.jar")
    plant_interface_chain(
        el,
        iface="org.apache.el.lang.EvaluationVisitor",
        impl="org.apache.el.parser.AstFunction",
        source="org.apache.el.MethodExpressionImpl",
        sink_key="method_invoke",
        method="visitNode",
        payload_field="functionMethod",
    )
    classes += el.build()
    return SceneSpec("Tomcat", "8.5.47", classes, planted_fakes=1, expected_effective=3)


def build_jetty_scene() -> SceneSpec:
    """Jetty 9.4.36 scene: 4 effective, 2 fakes (Table X row 4)."""
    classes = build_lang_base()
    pb = ProgramBuilder(jar="jetty-util-9.4.36.jar")
    plant_interface_chain(
        pb,
        iface="org.eclipse.jetty.util.component.Dumpable",
        impl="org.eclipse.jetty.util.RolloverFileOutputStream",
        source="org.eclipse.jetty.util.AttributesMap",
        sink_key="new_output_stream",
        method="dumpTo",
        payload_field="rolloverFile",
    )
    plant_interface_chain(
        pb,
        iface="org.eclipse.jetty.util.thread.Scheduler",
        impl="org.eclipse.jetty.util.thread.ScheduledExecutorScheduler",
        source="org.eclipse.jetty.util.SocketAddressResolver",
        sink_key="get_by_name",
        method="scheduleResolve",
        payload_field="hostName",
    )
    plant_guard_decoy(
        pb, "org.eclipse.jetty.util.Jetty", "org.eclipse.jetty.util.JettyConfig"
    )
    classes += pb.build()
    naming = ProgramBuilder(jar="jetty-jndi-9.4.36.jar")
    plant_interface_chain(
        naming,
        iface="org.eclipse.jetty.jndi.NamingEntry",
        impl="org.eclipse.jetty.jndi.local.localContextRoot",
        source="org.eclipse.jetty.jndi.NamingContext",
        sink_key="context_lookup",
        method="bindEntry",
        payload_field="jndiName",
    )
    plant_interface_chain(
        naming,
        iface="org.eclipse.jetty.plus.jndi.NamingDump",
        impl="org.eclipse.jetty.plus.jndi.Link",
        source="org.eclipse.jetty.plus.jndi.Resource",
        sink_key="registry_lookup",
        method="resolveLink",
        payload_field="linkTarget",
    )
    plant_guard_decoy(
        naming, "org.eclipse.jetty.jndi.ContextFactory", "org.eclipse.jetty.util.JettyConfig2"
    )
    classes += naming.build()
    return SceneSpec("Jetty", "9.4.36", classes, planted_fakes=2, expected_effective=4)


def build_dubbo_scene() -> SceneSpec:
    """Apache Dubbo 3.0.2 scene: 3 effective, 2 fakes (Table X row 5).

    The three effective chains model the shapes behind CVE-2021-43297,
    CVE-2022-39198 and CVE-2023-23638 (hessian/native deserialization
    into lookup/getConnection/invoke sinks, §IV-D3).
    """
    classes = build_lang_base()
    pb = ProgramBuilder(jar="dubbo-3.0.2.jar")
    plant_interface_chain(
        pb,
        iface="org.apache.dubbo.rpc.Invoker",
        impl="org.apache.dubbo.rpc.proxy.InvokerInvocationHandler",
        source="org.apache.dubbo.rpc.RpcInvocation",
        sink_key="method_invoke",
        method="doInvoke",
        payload_field="targetMethod",
    )  # CVE-2023-23638 shape
    plant_interface_chain(
        pb,
        iface="org.apache.dubbo.registry.RegistryService",
        impl="org.apache.dubbo.registry.support.AbstractRegistryFactory",
        source="org.apache.dubbo.registry.integration.RegistryDirectory",
        sink_key="context_lookup",
        method="resolveRegistry",
        payload_field="registryUrl",
    )  # CVE-2021-43297 shape
    plant_interface_chain(
        pb,
        iface="org.apache.dubbo.common.datasource.DataSourceFinder",
        impl="org.apache.dubbo.common.datasource.JdbcDataSourceFinder",
        source="org.apache.dubbo.common.beanutil.JavaBeanDescriptor",
        sink_key="get_connection",
        method="openDataSource",
        payload_field="jdbcUrl",
    )  # CVE-2022-39198 shape
    plant_guard_decoy(
        pb, "org.apache.dubbo.config.ServiceConfig", "org.apache.dubbo.common.DubboConfig"
    )
    plant_guard_decoy(
        pb, "org.apache.dubbo.remoting.transport.AbstractServer", "org.apache.dubbo.common.DubboConfig"
    )
    classes += pb.build()
    return SceneSpec("Apache Dubbo", "3.0.2", classes, planted_fakes=2, expected_effective=3)


SCENE_BUILDERS = {
    "Spring": build_spring_scene,
    "JDK8": build_jdk8_scene,
    "Tomcat": build_tomcat_scene,
    "Jetty": build_jetty_scene,
    "Apache Dubbo": build_dubbo_scene,
}


def build_scene(name: str) -> SceneSpec:
    try:
        return SCENE_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scene {name!r}; choose from {sorted(SCENE_BUILDERS)}"
        ) from None

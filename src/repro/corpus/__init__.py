"""Synthetic evaluation corpus.

* :mod:`repro.corpus.jdk` — synthetic JDK (chain-free base + URLDNS)
* :mod:`repro.corpus.components` — the 26 Table IX components
* :mod:`repro.corpus.scenes` — the 5 Table X development scenes
* :mod:`repro.corpus.generator` — random corpora for Table VIII
* :mod:`repro.corpus.patterns` — the chain/decoy/flood generators
* :mod:`repro.corpus.base` — ComponentSpec / KnownChainSpec model
"""

from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.corpus.components import (
    COMPONENT_BUILDERS,
    COMPONENT_NAMES,
    build_all,
    build_component,
)
from repro.corpus.generator import generate_corpus
from repro.corpus.jdk import build_jdk8_extras, build_lang_base
from repro.corpus.scenes import SCENE_BUILDERS, SceneSpec, build_scene

__all__ = [
    "ComponentSpec",
    "KnownChainSpec",
    "COMPONENT_BUILDERS",
    "COMPONENT_NAMES",
    "build_component",
    "build_all",
    "build_lang_base",
    "build_jdk8_extras",
    "SceneSpec",
    "SCENE_BUILDERS",
    "build_scene",
    "generate_corpus",
]

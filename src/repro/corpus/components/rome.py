"""Rome: EqualsBean.hashCode -> BeanLikeComparator -> Method.invoke,
with the organic HashMap.readObject-rooted variant as the unknown."""

from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    emit_sink,
    plant_gi_bait_fan,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE

NAME = "Rome"
PKG = "com.sun.syndication"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="rome-1.0.jar")

    # SL sees the known chain (planted before any crowders) + the flood.
    # The reflective hop hides behind interface dispatch so that
    # GadgetInspector (extension-only polymorphism) cannot follow it.
    fetcher = f"{PKG}.feed.impl.PropertyFetcher"
    fb = pb.interface(fetcher)
    fb.abstract_method("fetch", params=["java.lang.Object"], returns="java.lang.Object")
    fb.finish()
    with pb.cls(f"{PKG}.feed.impl.ToStringBean", implements=[fetcher, SERIALIZABLE]) as c:
        c.field("prop", "java.lang.Object")
        with c.method("fetch", params=["java.lang.Object"], returns="java.lang.Object") as m:
            target = m.get_field(m.this, "prop")
            emit_sink(m, "method_invoke", target)
            m.ret(target)
    with pb.cls(f"{PKG}.feed.impl.EqualsBean", implements=[SERIALIZABLE]) as c:
        c.field("beanClass", "java.lang.Object")
        c.field("obj", "java.lang.Object")
        with c.method("hashCode", returns="int") as m:
            o = m.get_field(m.this, "obj")
            m.invoke_interface(o, fetcher, "fetch", [o], returns="java.lang.Object")
            m.ret(0)

    known = [
        KnownChainSpec((f"{PKG}.feed.impl.EqualsBean", "hashCode"),
                       ("java.lang.reflect.Method", "invoke"))
    ]

    plant_sl_flood(pb, f"{PKG}.io.impl", 18)
    plant_sl_crowders(pb, f"{PKG}.feed.synd", ["exec"])
    plant_gi_bait_fan(pb, f"{PKG}.io.WireFeedInput", f"{PKG}.io.FeedParser", 2)

    return component(NAME, PKG, pb, known)

"""XBean: the naming-context JNDI chain."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_interface_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "XBean"
PKG = "org.apache.xbean"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="xbean-naming-4.5.jar")
    plant_sl_crowders(pb, f"{PKG}.recipe", ["context_lookup", "exec"])
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.naming.context.ContextAccess",
            impl=f"{PKG}.naming.context.WritableContext",
            source=f"{PKG}.naming.context.ContextUtil$ReadOnlyBinding",
            sink_key="context_lookup",
            method="resolveBinding",
            payload_field="name",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.naming.global.GlobalContextManager", f"{PKG}.naming.NamingWorker", 2)
    return component(NAME, PKG, pb, known)

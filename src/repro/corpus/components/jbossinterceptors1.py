"""JBossInterceptors1: interceptor metadata dispatch into Method.invoke."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_guard_decoy,
    plant_interface_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "JBossInterceptors1"
PKG = "org.jboss.interceptor"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="jboss-interceptor-core-2.0.0.jar")
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.spi.metadata.MethodMetadata",
            impl=f"{PKG}.reader.SimpleMethodMetadata",
            source=f"{PKG}.proxy.InterceptorMethodHandler",
            sink_key="method_invoke",
            method="getJavaMethod",
            payload_field="javaMethod",
        )
    ]
    plant_sl_flood(pb, f"{PKG}.util", 6)
    plant_sl_crowders(pb, f"{PKG}.builder", ["exec"])
    plant_guard_decoy(pb, f"{PKG}.proxy.InterceptorInvocation", f"{PKG}.InterceptorConfig")
    plant_guard_decoy(pb, f"{PKG}.reader.ClassMetadataReader", f"{PKG}.InterceptorConfig")
    return component(NAME, PKG, pb, known)

"""Resin: the QName/ContextImpl JNDI chain — proxy-routed, so every
static tool (Tabby included) reports nothing real here."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_proxy_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Resin"
PKG = "com.caucho"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="resin-4.0.52.jar")
    plant_sl_crowders(pb, f"{PKG}.util", ["exec", "context_lookup"])
    known = [
        plant_proxy_chain(
            pb,
            source=f"{PKG}.naming.QName",
            handler=f"{PKG}.naming.ContextImpl",
            sink_key="context_lookup",
            handler_method="lookupImpl",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.hessian.HessianInput", f"{PKG}.hessian.HessianWorker", 2)
    return component(NAME, PKG, pb, known)

"""spring-aop: an AdvisedSupport interceptor chain plus a
JdkDynamicAopProxy chain (proxy-routed, missed)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_guard_decoy,
    plant_interface_chain,
    plant_proxy_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "spring-aop"
PKG = "org.springframework.aop"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="spring-aop-4.1.4.jar")
    plant_sl_crowders(pb, f"{PKG}.config", ["method_invoke", "exec"])
    known = [
        plant_interface_chain(
            pb,
            iface="org.aopalliance.intercept.MethodInterceptor",
            impl=f"{PKG}.framework.ReflectiveMethodInvocation",
            source=f"{PKG}.framework.AdvisedSupport",
            sink_key="method_invoke",
            method="proceed",
            payload_field="method",
        ),
        plant_proxy_chain(
            pb,
            source=f"{PKG}.framework.JdkDynamicAopProxy",
            handler=f"{PKG}.target.SingletonTargetSource",
            sink_key="method_invoke",
            handler_method="getTarget",
        ),
    ]
    plant_guard_decoy(pb, f"{PKG}.support.AbstractPointcutAdvisor", f"{PKG}.AopConfig")
    plant_gi_bait_fan(pb, f"{PKG}.framework.ProxyFactory", f"{PKG}.framework.ProxyWorker", 5)
    return component(NAME, PKG, pb, known)

"""JavassistWeld1: the weld interceptor chain over javassist proxies."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_guard_decoy,
    plant_interface_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "JavassistWeld1"
PKG = "org.jboss.weld"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="weld-core-1.1.33.jar")
    known = [
        plant_interface_chain(
            pb,
            iface="javassist.util.proxy.MethodHandler",
            impl=f"{PKG}.interceptor.proxy.InterceptorMethodHandler",
            source=f"{PKG}.interceptor.proxy.InterceptionSubjectWrapper",
            sink_key="method_invoke",
            method="executeInterception",
            payload_field="targetMethod",
        )
    ]
    plant_sl_flood(pb, f"{PKG}.interceptor.util", 2)
    plant_sl_crowders(pb, f"{PKG}.interceptor.builder", ["exec"])
    plant_guard_decoy(pb, f"{PKG}.interceptor.reader.InterceptorMetadataImpl", f"{PKG}.WeldConfig")
    plant_guard_decoy(pb, f"{PKG}.interceptor.spi.model.InterceptionModelImpl", f"{PKG}.WeldConfig")
    return component(NAME, PKG, pb, known)

"""Groovy1: the ConvertedClosure/MethodClosure chain — dynamic proxy
all the way, so every static tool misses it (§V-B)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_guard_decoy,
    plant_proxy_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Groovy1"
PKG = "org.codehaus.groovy"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="groovy-2.3.9.jar")
    plant_sl_flood(pb, f"{PKG}.ast", 137)
    plant_sl_crowders(pb, f"{PKG}.control", ["exec"])
    known = [
        plant_proxy_chain(
            pb,
            source=f"{PKG}.runtime.ConvertedClosure",
            handler=f"{PKG}.runtime.MethodClosure",
            sink_key="exec",
            handler_method="doCall",
        )
    ]
    plant_guard_decoy(pb, f"{PKG}.runtime.GStringImpl", f"{PKG}.runtime.GroovyConfig")
    plant_guard_decoy(pb, f"{PKG}.util.Expando", f"{PKG}.runtime.GroovyConfig")
    plant_gi_bait_fan(pb, f"{PKG}.reflection.CachedClass", f"{PKG}.reflection.ReflectWorker", 2)
    return component(NAME, PKG, pb, known)

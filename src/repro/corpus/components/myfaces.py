"""Myfaces1: the EL-expression evaluation chain."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_interface_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Myface"
PKG = "org.apache.myfaces"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="myfaces-impl-2.2.9.jar")
    plant_sl_crowders(pb, f"{PKG}.context", ["script_eval", "exec"])
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.view.facelets.el.ELText",
            impl=f"{PKG}.view.facelets.el.ValueExpressionMethodExpression",
            source=f"{PKG}.el.unified.resolver.FacesCompositeELResolver",
            sink_key="script_eval",
            method="invokeExpression",
            payload_field="expressionString",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.application.ApplicationImpl", f"{PKG}.application.NavWorker", 2)
    return component(NAME, PKG, pb, known)

"""Shared scaffolding for the dataset components of Table IX.

Every component module builds a :class:`ComponentSpec` from the pattern
generators.  Insertion order matters for Serianalyzer fidelity: call
sites created *before* the crowders stay inside SL's caller cap and are
found; chains created *after* them are lost (§IV-F).  The canonical
layout is therefore::

    1. chains/floods Serianalyzer is expected to find
    2. crowders (one batch per sink to hide)
    3. everything Serianalyzer is expected to lose
       (remaining knowns, decoys, baits, bombs)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import JavaClass

__all__ = ["component"]


def component(
    name: str,
    package: str,
    pb: ProgramBuilder,
    known: Sequence[KnownChainSpec],
    serianalyzer_bomb: bool = False,
) -> ComponentSpec:
    """Finish a builder into a ComponentSpec."""
    return ComponentSpec(
        name=name,
        classes=pb.build(),
        known_chains=list(known),
        package=package,
        serianalyzer_bomb=serianalyzer_bomb,
    )

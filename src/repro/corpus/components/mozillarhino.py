"""MozillaRhino: one member-box reflection chain (found) and one
proxy-mediated chain (missed by all static tools)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_interface_chain,
    plant_proxy_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "MozillaRhino"
PKG = "org.mozilla.javascript"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="js-1.7r2.jar")
    plant_sl_flood(pb, f"{PKG}.ast", 93)
    plant_sl_crowders(pb, f"{PKG}.optimizer", ["method_invoke", "exec"])
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.Scriptable",
            impl=f"{PKG}.MemberBox",
            source=f"{PKG}.NativeJavaObject",
            sink_key="method_invoke",
            method="getDefaultValue",
            payload_field="memberObject",
        ),
        plant_proxy_chain(
            pb,
            source=f"{PKG}.NativeJavaMethod",
            handler=f"{PKG}.JavaMembers",
            sink_key="method_invoke",
            handler_method="reflectMethod",
        ),
    ]
    plant_gi_bait_fan(pb, f"{PKG}.ContextFactory", f"{PKG}.ContextWorker", 3)
    return component(NAME, PKG, pb, known)

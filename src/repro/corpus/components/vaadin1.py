"""Vaadin1: NestedMethodProperty chain via class-extension dispatch
(GadgetInspector can see this one)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_extends_chain,
    plant_gi_bait_fan,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Vaadin1"
PKG = "com.vaadin"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="vaadin-server-7.7.14.jar")
    plant_sl_flood(pb, f"{PKG}.event", 18)
    plant_sl_crowders(pb, f"{PKG}.server", ["method_invoke", "exec"])
    known = [
        plant_extends_chain(
            pb,
            base=f"{PKG}.data.util.AbstractProperty",
            sub=f"{PKG}.data.util.NestedMethodProperty",
            source=f"{PKG}.data.util.PropertysetItem",
            sink_key="method_invoke",
            method="fireValueChange",
            payload_field="getMethod",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.ui.ConnectorTracker", f"{PKG}.ui.UIWorker", 5)
    return component(NAME, PKG, pb, known)

"""CommonsBeanutils1: PriorityQueue.readObject -> BeanComparator.compare
-> PropertyUtils/Method.invoke."""

from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    emit_sink,
    plant_gi_bait_fan,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE

NAME = "CommonsBeanutils1"
PKG = "org.apache.commons.beanutils"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="commons-beanutils-1.9.2.jar")

    plant_sl_flood(pb, PKG + ".converters", 50)
    plant_sl_crowders(pb, PKG + ".locale", ["method_invoke", "exec"])

    # the real chain: PriorityQueue.readObject -> Comparator.compare
    # (alias) -> BeanComparator.compare -> PropertyUtils -> Method.invoke
    with pb.cls(f"{PKG}.BeanComparator", implements=["java.util.Comparator", SERIALIZABLE]) as c:
        c.field("property", "java.lang.Object")
        with c.method(
            "compare", params=["java.lang.Object", "java.lang.Object"], returns="int"
        ) as m:
            prop = m.get_field(m.this, "property")
            m.invoke(
                m.this, f"{PKG}.BeanComparator", "getProperty",
                [m.param(1), prop], returns="java.lang.Object",
            )
            m.ret(0)
        with c.method(
            "getProperty", params=["java.lang.Object", "java.lang.Object"],
            returns="java.lang.Object",
        ) as m:
            emit_sink(m, "method_invoke", m.param(2))
            m.ret(m.param(2))

    known = [
        KnownChainSpec(("java.util.PriorityQueue", "readObject"),
                       ("java.lang.reflect.Method", "invoke"))
    ]

    plant_gi_bait_fan(pb, f"{PKG}.BeanIntrospector", f"{PKG}.IntrospectionWorker", 2)

    return component(NAME, PKG, pb, known)

"""FileUpload1: the disk-file-item write/delete gadgets — small, clean,
and visible to every tool (both baselines score here)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_extends_chain,
    plant_gi_bait_fan,
    plant_interface_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "FileUpload1"
PKG = "org.apache.commons.fileupload"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="commons-fileupload-1.3.1.jar")
    known = [
        plant_extends_chain(
            pb,
            base=f"{PKG}.util.mime.AbstractOutputStream",
            sub=f"{PKG}.disk.DeferredFileOutputStream",
            source=f"{PKG}.disk.DiskFileItem",
            sink_key="new_output_stream",
            method="writeTo",
            payload_field="repository",
        ),
        plant_interface_chain(
            pb,
            iface=f"{PKG}.FileItemHeaders",
            impl=f"{PKG}.util.FileItemHeadersImpl",
            source=f"{PKG}.MultipartStream",
            sink_key="file_delete",
            method="purge",
            payload_field="tempFile",
        ),
    ]
    plant_sl_flood(pb, f"{PKG}.portlet", 4)
    plant_sl_crowders(pb, f"{PKG}.servlet", ["exec"])
    plant_gi_bait_fan(pb, f"{PKG}.FileUploadBase", f"{PKG}.ParamParser", 2)
    return component(NAME, PKG, pb, known)

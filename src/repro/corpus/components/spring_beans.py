"""spring-beans: one PropertyAccessor chain Tabby finds plus one
proxy-routed chain it (and everything else) must miss."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_guard_decoy,
    plant_interface_chain,
    plant_proxy_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "spring-beans"
PKG = "org.springframework.beans"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="spring-beans-4.1.4.jar")
    plant_sl_crowders(pb, f"{PKG}.propertyeditors", ["method_invoke", "exec"])
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.PropertyAccessor",
            impl=f"{PKG}.BeanWrapperImpl",
            source=f"{PKG}.support.PagedListHolder",
            sink_key="method_invoke",
            method="getPropertyValue",
            payload_field="readMethod",
        ),
        plant_proxy_chain(
            pb,
            source=f"{PKG}.factory.support.DefaultListableBeanFactory",
            handler=f"{PKG}.factory.support.FactoryBeanRegistrySupport",
            sink_key="method_invoke",
            handler_method="getObjectFromFactoryBean",
        ),
    ]
    plant_guard_decoy(pb, f"{PKG}.support.ResourceEditorRegistrar", f"{PKG}.BeansConfig")
    plant_gi_bait_fan(pb, f"{PKG}.CachedIntrospectionResults", f"{PKG}.IntrospectWorker", 1)
    return component(NAME, PKG, pb, known)

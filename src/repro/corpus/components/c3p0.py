"""C3P0: PoolBackedDataSource/ReferenceIndirector JNDI chain plus three
further dangerous reference paths (the unknowns)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_guard_decoy,
    plant_interface_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "C3P0"
PKG = "com.mchange"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="c3p0-0.9.5.2.jar")
    # SL is expected to see exactly one chain: the Context.lookup
    # unknown, planted before the crowders
    plant_interface_chain(  # unknown #1 (not registered as known)
        pb,
        iface=f"{PKG}.v2.naming.JavaBeanObjectFactory",
        impl=f"{PKG}.v2.naming.JavaBeanReferenceMaker",
        source=f"{PKG}.v2.naming.ReferenceableUtils",
        sink_key="context_lookup",
        method="referenceToObject",
        payload_field="contextName",
    )
    plant_sl_crowders(
        pb, f"{PKG}.v2.log", ["method_invoke", "exec", "get_connection", "load_class"]
    )
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.v2.naming.ReferenceIndirector",
            impl=f"{PKG}.v2.naming.ReferenceIndirector$ReferenceSerialized",
            source=f"{PKG}.v2.c3p0.impl.PoolBackedDataSourceBase",
            sink_key="method_invoke",
            method="getObject",
            payload_field="reference",
        )
    ]
    # unknowns #2 and #3
    plant_interface_chain(
        pb,
        iface=f"{PKG}.v2.c3p0.ConnectionCustomizer",
        impl=f"{PKG}.v2.c3p0.WrapperConnectionPoolDataSourceBase",
        source=f"{PKG}.v2.c3p0.impl.DriverManagerDataSourceBase",
        sink_key="get_connection",
        method="acquireConnection",
        payload_field="jdbcUrl",
    )
    plant_interface_chain(
        pb,
        iface=f"{PKG}.v2.ser.Indirector",
        impl=f"{PKG}.v2.ser.IndirectlySerialized",
        source=f"{PKG}.v2.ser.SerializableUtils",
        sink_key="load_class",
        method="resolveClass",
        payload_field="className",
    )
    plant_guard_decoy(pb, f"{PKG}.v2.c3p0.impl.C3P0PooledConnection", f"{PKG}.v2.cfg.C3P0Config")
    plant_guard_decoy(pb, f"{PKG}.v2.c3p0.stmt.GooGooStatementCache", f"{PKG}.v2.cfg.C3P0Config")
    return component(NAME, PKG, pb, known)

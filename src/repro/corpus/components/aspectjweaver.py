"""AspectJWeaver: a cache-write gadget (Files.newOutputStream)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_interface_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "AspectJWeaver"
PKG = "org.aspectj"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="aspectjweaver-1.9.2.jar")
    plant_sl_flood(pb, f"{PKG}.util", 27)
    plant_sl_crowders(pb, f"{PKG}.bridge", ["new_output_stream", "exec"])
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.weaver.tools.cache.CacheBacking",
            impl=f"{PKG}.weaver.tools.cache.SimpleCacheBacking",
            source=f"{PKG}.weaver.tools.cache.SimpleCache$StoreableCachingMap",
            sink_key="new_output_stream",
            method="writeToPath",
            payload_field="folder",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.weaver.ltw.LTWorld", f"{PKG}.weaver.ltw.LTWeaver", 8)
    return component(NAME, PKG, pb, known)

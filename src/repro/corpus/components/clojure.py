"""Clojure: AFn-rooted extension chains (GI-visible) plus the dense
dispatcher cluster that makes Serianalyzer's enumeration explode (✗)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_extends_chain,
    plant_gi_bait_fan,
    plant_guard_decoy,
    plant_sl_bomb,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Clojure"
PKG = "clojure"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="clojure-1.8.0.jar")
    plant_sl_bomb(pb, f"{PKG}.lang.compiler")
    plant_sl_crowders(pb, f"{PKG}.java", ["method_invoke", "exec"])
    known = [
        plant_extends_chain(
            pb,
            base=f"{PKG}.lang.AFn",
            sub=f"{PKG}.lang.Var",
            source=f"{PKG}.lang.PersistentQueue",
            sink_key="method_invoke",
            method="invokeFn",
            payload_field="root",
        )
    ]
    # two effective extension chains the dataset does not record
    plant_extends_chain(
        pb,
        base=f"{PKG}.lang.ARef",
        sub=f"{PKG}.lang.Agent",
        source=f"{PKG}.lang.PersistentVector",
        sink_key="load_class",
        method="deref",
        payload_field="state",
    )
    plant_extends_chain(
        pb,
        base=f"{PKG}.lang.AReference",
        sub=f"{PKG}.lang.Namespace",
        source=f"{PKG}.lang.PersistentArrayMap",
        sink_key="get_connection",
        method="resetMeta",
        payload_field="meta",
    )
    plant_guard_decoy(pb, f"{PKG}.lang.LockingTransaction", f"{PKG}.lang.RTConfig")
    plant_gi_bait_fan(pb, f"{PKG}.lang.MultiFn", f"{PKG}.lang.MethodImplCache", 8)
    return component(NAME, PKG, pb, known, serianalyzer_bomb=True)

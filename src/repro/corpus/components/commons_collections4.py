"""commons-collections 4.0 — the CommonsCollections2/4-style component.

Dataset chains: the ``PriorityQueue.readObject`` ->
``TransformingComparator.compare`` -> Transformer-family chain, plus a
dynamic-proxy chain.  The family again multiplies into unknown chains
(LazyMap/TiedMapEntry route, the organic HashMap root, nesting through
ChainedTransformer, and the InstantiateTransformer/ClassLoader sink).
"""

from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    emit_sink,
    plant_extends_chain,
    plant_guard_decoy,
    plant_proxy_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE

NAME = "commons-colletions(4.0.0)"
PKG = "org.apache.commons.collections4"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="commons-collections4-4.0.jar")
    known = []

    plant_sl_flood(pb, PKG + ".iterators", 38)
    plant_sl_crowders(pb, PKG + ".buffer", ["method_invoke", "load_class", "exec"])

    iface = f"{PKG}.Transformer"
    ib = pb.interface(iface)
    ib.abstract_method("transform", params=["java.lang.Object"], returns="java.lang.Object")
    ib.finish()

    with pb.cls(f"{PKG}.functors.InvokerTransformer", implements=[iface, SERIALIZABLE]) as c:
        c.field("iMethodName", "java.lang.Object")
        with c.method("transform", params=["java.lang.Object"], returns="java.lang.Object") as m:
            payload = m.get_field(m.this, "iMethodName")
            emit_sink(m, "method_invoke", payload)
            m.ret(payload)

    with pb.cls(f"{PKG}.functors.InstantiateTransformer", implements=[iface, SERIALIZABLE]) as c:
        c.field("iArgs", "java.lang.Object")
        with c.method("transform", params=["java.lang.Object"], returns="java.lang.Object") as m:
            payload = m.get_field(m.this, "iArgs")
            emit_sink(m, "load_class", payload)
            m.ret(payload)

    with pb.cls(f"{PKG}.functors.ChainedTransformer", implements=[iface, SERIALIZABLE]) as c:
        c.field("iTransformers", "java.lang.Object[]")
        with c.method("transform", params=["java.lang.Object"], returns="java.lang.Object") as m:
            arr = m.get_field(m.this, "iTransformers")
            inner = m.array_get(arr, 0)
            out = m.invoke_interface(inner, iface, "transform", [m.param(1)], returns="java.lang.Object")
            m.ret(out)

    # K1: java.util.PriorityQueue.readObject -> TransformingComparator
    with pb.cls(
        f"{PKG}.comparators.TransformingComparator",
        implements=["java.util.Comparator", SERIALIZABLE],
    ) as c:
        c.field("transformer", "java.lang.Object")
        with c.method(
            "compare", params=["java.lang.Object", "java.lang.Object"], returns="int"
        ) as m:
            t = m.get_field(m.this, "transformer")
            m.invoke_interface(t, iface, "transform", [m.param(1)], returns="java.lang.Object")
            m.ret(0)
    known.append(
        KnownChainSpec(("java.util.PriorityQueue", "readObject"),
                       ("java.lang.reflect.Method", "invoke"))
    )

    # LazyMap/TiedMapEntry route: sources of the *unknown* chains
    with pb.cls(f"{PKG}.map.LazyMap", implements=["java.util.Map", SERIALIZABLE]) as c:
        c.field("factory", "java.lang.Object")
        with c.method("get", params=["java.lang.Object"], returns="java.lang.Object") as m:
            f = m.get_field(m.this, "factory")
            out = m.invoke_interface(f, iface, "transform", [m.param(1)], returns="java.lang.Object")
            m.ret(out)
        with c.method("put", params=["java.lang.Object", "java.lang.Object"], returns="java.lang.Object") as m:
            m.ret(m.param(2))

    with pb.cls(f"{PKG}.keyvalue.TiedMapEntry", implements=["java.util.Map$Entry", SERIALIZABLE]) as c:
        c.field("map", "java.util.Map")
        c.field("key", "java.lang.Object")
        with c.method("getKey", returns="java.lang.Object") as m:
            k = m.get_field(m.this, "key")
            m.ret(k)
        with c.method("getValue", returns="java.lang.Object") as m:
            mp = m.get_field(m.this, "map")
            k = m.get_field(m.this, "key")
            v = m.invoke_interface(mp, "java.util.Map", "get", [k], returns="java.lang.Object")
            m.ret(v)
        with c.method("hashCode", returns="int") as m:
            m.invoke(m.this, f"{PKG}.keyvalue.TiedMapEntry", "getValue", returns="java.lang.Object")
            m.ret(0)

    # K2: dynamic-proxy chain
    known.append(
        plant_proxy_chain(
            pb,
            source=f"{PKG}.map.MultiValueMap",
            handler=f"{PKG}.functors.FactoryHandler",
            sink_key="method_invoke",
        )
    )

    # decoys: 5 fakes, two hidden from GI behind interface dispatch
    cfg = f"{PKG}.CollectionsConfig"
    plant_guard_decoy(pb, f"{PKG}.comparators.ComparatorChain", cfg)
    plant_guard_decoy(pb, f"{PKG}.keyvalue.MultiKey", cfg)
    plant_guard_decoy(pb, f"{PKG}.map.Flat3Map", cfg)
    plant_guard_decoy(pb, f"{PKG}.bidimap.TreeBidiMap", cfg,
                      through_interface=f"{PKG}.OrderedBidiMapGuard")
    plant_guard_decoy(pb, f"{PKG}.bag.TreeBag", cfg,
                      through_interface=f"{PKG}.SortedBagGuard")

    # an effective extension-dispatch chain the dataset does not record
    # (one of the few unknowns GadgetInspector can also see)
    plant_extends_chain(
        pb,
        base=f"{PKG}.collection.AbstractCollectionDecorator",
        sub=f"{PKG}.collection.UnmodifiableCollection",
        source=f"{PKG}.collection.CompositeCollection",
        sink_key="db_parse",
        method="decorated",
        payload_field="collection",
    )

    return component(NAME, PKG, pb, known)

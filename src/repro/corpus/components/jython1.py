"""Jython1: a PyObject proxy chain (missed by all tools), a large
GI-bait fan (GI reports 42 results), and the Serianalyzer bomb (✗)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_guard_decoy,
    plant_proxy_chain,
    plant_sl_bomb,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Jython1"
PKG = "org.python"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="jython-standalone-2.5.2.jar")
    plant_sl_bomb(pb, f"{PKG}.compiler")
    plant_sl_crowders(pb, f"{PKG}.util", ["exec"])
    known = [
        plant_proxy_chain(
            pb,
            source=f"{PKG}.core.PyObjectDerived",
            handler=f"{PKG}.core.PyMethod",
            sink_key="new_output_stream",
            handler_method="__call__",
        )
    ]
    plant_guard_decoy(pb, f"{PKG}.core.PyBytecode", f"{PKG}.core.PySystemState")
    plant_guard_decoy(pb, f"{PKG}.core.PyFunction", f"{PKG}.core.PySystemState")
    plant_gi_bait_fan(pb, f"{PKG}.core.PyType", f"{PKG}.core.TypeResolver", 40)
    return component(NAME, PKG, pb, known, serianalyzer_bomb=True)

"""The 26 dataset components of Table IX.

``COMPONENT_BUILDERS`` maps the component name (as printed in the
table) to a zero-argument builder returning its :class:`ComponentSpec`.
Analyses run against the component classes *plus* the chain-free
runtime of :func:`repro.corpus.jdk.build_lang_base`.
"""

from typing import Callable, Dict, List

from repro.corpus.base import ComponentSpec

from repro.corpus.components import (
    aspectjweaver,
    beanshell1,
    c3p0,
    click1,
    clojure,
    commons_beanutils1,
    commons_collections3,
    commons_collections4,
    commons_configuration,
    fileupload1,
    groovy1,
    hibernate,
    javassistweld1,
    jbossinterceptors1,
    json1,
    jython1,
    mozillarhino,
    myfaces,
    resin,
    rome,
    spring,
    spring_aop,
    spring_beans,
    vaadin1,
    wicket1,
    xbean,
)

_MODULES = [
    aspectjweaver,
    beanshell1,
    c3p0,
    click1,
    clojure,
    commons_beanutils1,
    commons_collections3,
    commons_collections4,
    fileupload1,
    groovy1,
    hibernate,
    jbossinterceptors1,
    json1,
    javassistweld1,
    jython1,
    mozillarhino,
    myfaces,
    rome,
    spring,
    vaadin1,
    wicket1,
    commons_configuration,
    spring_beans,
    spring_aop,
    xbean,
    resin,
]

COMPONENT_BUILDERS: Dict[str, Callable[[], ComponentSpec]] = {
    module.NAME: module.build for module in _MODULES
}

COMPONENT_NAMES: List[str] = list(COMPONENT_BUILDERS)


def build_component(name: str) -> ComponentSpec:
    """Build one component by its Table IX name."""
    try:
        return COMPONENT_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; choose from {COMPONENT_NAMES}"
        ) from None


def build_all() -> List[ComponentSpec]:
    """Build every component, in Table IX row order."""
    return [builder() for builder in COMPONENT_BUILDERS.values()]

"""Spring (ysoserial Spring1/Spring2): both chains route through
``ObjectFactoryDelegatingInvocationHandler`` / ``MethodInvokeTypeProvider``
dynamic proxies — Tabby reports only its two conditional fakes here."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_guard_decoy,
    plant_proxy_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Spring"
PKG = "org.springframework"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="spring-core-4.1.4.jar")
    plant_sl_flood(pb, f"{PKG}.util", 4)
    plant_sl_crowders(pb, f"{PKG}.asm", ["exec", "method_invoke"])
    known = [
        plant_proxy_chain(
            pb,
            source=f"{PKG}.core.SerializableTypeWrapper$MethodInvokeTypeProvider",
            handler=f"{PKG}.core.SerializableTypeWrapper$TypeProvider",
            sink_key="method_invoke",
            handler_method="getType",
        ),
        plant_proxy_chain(
            pb,
            source=f"{PKG}.beans.factory.support.AutowireUtils$ObjectFactoryDelegatingInvocationHandler",
            handler=f"{PKG}.beans.factory.ObjectFactoryImpl",
            sink_key="method_invoke",
            handler_method="getObject",
        ),
    ]
    plant_guard_decoy(pb, f"{PKG}.core.io.VfsResource", f"{PKG}.core.SpringProperties")
    plant_guard_decoy(pb, f"{PKG}.core.convert.TypeDescriptor", f"{PKG}.core.SpringProperties")
    return component(NAME, PKG, pb, known)

"""JSON1: a JSONObject proxy chain — invisible to every static tool;
Tabby correctly reports nothing here (Table IX row: result 0)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_proxy_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "JSON1"
PKG = "net.sf.json"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="json-lib-2.4.jar")
    plant_sl_crowders(pb, f"{PKG}.util", ["exec"])
    known = [
        plant_proxy_chain(
            pb,
            source=f"{PKG}.JSONObject",
            handler=f"{PKG}.processors.JsonValueProcessorImpl",
            sink_key="exec",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.JSONSerializer", f"{PKG}.JsonWorker", 4)
    return component(NAME, PKG, pb, known)

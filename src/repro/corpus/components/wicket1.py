"""Wicket1: the FileUpload-clone gadgets inside wicket-util."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_extends_chain,
    plant_gi_bait_fan,
    plant_interface_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Wicket1"
PKG = "org.apache.wicket"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="wicket-util-6.23.0.jar")
    known = [
        plant_extends_chain(
            pb,
            base=f"{PKG}.util.upload.AbstractFileOutput",
            sub=f"{PKG}.util.upload.DeferredFileOutputStream",
            source=f"{PKG}.util.upload.DiskFileItem",
            sink_key="new_output_stream",
            method="writeTo",
            payload_field="repository",
        ),
        plant_interface_chain(
            pb,
            iface=f"{PKG}.util.upload.FileItemHeaders",
            impl=f"{PKG}.util.upload.FileItemHeadersImpl",
            source=f"{PKG}.util.upload.MultipartFormInputStream",
            sink_key="file_delete",
            method="purge",
            payload_field="tempFile",
        ),
    ]
    plant_sl_flood(pb, f"{PKG}.util.string", 3)
    plant_sl_crowders(pb, f"{PKG}.util.io", ["exec"])
    plant_gi_bait_fan(pb, f"{PKG}.util.file.Folder", f"{PKG}.util.file.FolderWorker", 2)
    return component(NAME, PKG, pb, known)

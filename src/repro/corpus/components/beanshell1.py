"""BeanShell1: XThis-style method dispatch into Method.invoke."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_guard_decoy,
    plant_interface_chain,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "BeanShell1"
PKG = "bsh"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="bsh-2.0b5.jar")
    plant_sl_flood(pb, f"{PKG}.collection", 1)
    plant_sl_crowders(pb, f"{PKG}.classpath", ["method_invoke", "exec"])
    known = [
        plant_interface_chain(
            pb,
            iface=f"{PKG}.BshCallable",
            impl=f"{PKG}.BshMethod",
            source=f"{PKG}.XThis",
            sink_key="method_invoke",
            method="invokeImpl",
            payload_field="javaMethod",
        )
    ]
    plant_guard_decoy(pb, f"{PKG}.Interpreter", f"{PKG}.InterpreterConfig")
    plant_guard_decoy(pb, f"{PKG}.NameSpace", f"{PKG}.InterpreterConfig")
    return component(NAME, PKG, pb, known)

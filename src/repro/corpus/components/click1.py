"""Click1: a column-rendering chain reachable through class extension
(one of the few chains GadgetInspector's dispatch can see)."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_extends_chain,
    plant_gi_bait_fan,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder

NAME = "Click1"
PKG = "org.apache.click"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="click-nodeps-2.3.0.jar")
    plant_sl_flood(pb, f"{PKG}.util", 56)
    plant_sl_crowders(pb, f"{PKG}.service", ["exec"])
    known = [
        plant_extends_chain(
            pb,
            base=f"{PKG}.control.AbstractControl",
            sub=f"{PKG}.control.Column",
            source=f"{PKG}.control.Table",
            sink_key="exec",
            method="renderValue",
            payload_field="decorator",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.control.Form", f"{PKG}.control.FieldWorker", 3)
    return component(NAME, PKG, pb, known)

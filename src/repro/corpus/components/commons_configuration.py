"""commons-configuration: a ConfigurationMap proxy chain nothing static
can see; Tabby correctly reports zero results."""

from repro.corpus.base import ComponentSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    plant_gi_bait_fan,
    plant_proxy_chain,
    plant_sl_crowders,
)
from repro.jvm.builder import ProgramBuilder

NAME = "commons-configration"
PKG = "org.apache.commons.configuration"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="commons-configuration-1.10.jar")
    plant_sl_crowders(pb, f"{PKG}.event", ["exec"])
    known = [
        plant_proxy_chain(
            pb,
            source=f"{PKG}.ConfigurationMap",
            handler=f"{PKG}.beanutils.ConfigurationDynaBean",
            sink_key="exec",
        )
    ]
    plant_gi_bait_fan(pb, f"{PKG}.ConfigurationUtils", f"{PKG}.ConfigWorker", 2)
    return component(NAME, PKG, pb, known)

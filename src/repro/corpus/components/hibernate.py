"""Hibernate: two hashCode-rooted getter chains into Method.invoke; the
organic HashMap.readObject variants are the unknowns."""

from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    emit_sink,
    plant_gi_bait_fan,
    plant_sl_crowders,
    plant_sl_flood,
    plant_taint_decoy,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE

NAME = "Hibernate"
PKG = "org.hibernate"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="hibernate-core-5.0.7.jar")

    plant_sl_flood(pb, f"{PKG}.internal.util", 55)
    plant_sl_crowders(pb, f"{PKG}.engine.internal", ["method_invoke", "exec"])

    getter = f"{PKG}.property.Getter"
    gb = pb.interface(getter)
    gb.abstract_method("get", params=["java.lang.Object"], returns="java.lang.Object")
    gb.finish()

    with pb.cls(f"{PKG}.property.BasicPropertyAccessor$BasicGetter",
                implements=[getter, SERIALIZABLE]) as c:
        c.field("method", "java.lang.Object")
        with c.method("get", params=["java.lang.Object"], returns="java.lang.Object") as m:
            target = m.get_field(m.this, "method")
            emit_sink(m, "method_invoke", target)
            m.ret(target)

    known = []
    for cls_name, field_name in [
        (f"{PKG}.engine.spi.TypedValue", "type"),
        (f"{PKG}.cache.spi.CacheKey", "key"),
    ]:
        with pb.cls(cls_name, implements=[SERIALIZABLE]) as c:
            c.field(field_name, "java.lang.Object")
            c.field("getter", "java.lang.Object")
            with c.method("hashCode", returns="int") as m:
                g = m.get_field(m.this, "getter")
                v = m.get_field(m.this, field_name)
                m.invoke_interface(g, getter, "get", [v], returns="java.lang.Object")
                m.ret(0)
        known.append(
            KnownChainSpec((cls_name, "hashCode"), ("java.lang.reflect.Method", "invoke"))
        )

    plant_gi_bait_fan(pb, f"{PKG}.engine.spi.SessionDelegator", f"{PKG}.engine.Worker", 2)

    # a fake only the taint-summary replay can explain: the timestamp
    # cache's region is a transient field nothing ever stores, so the
    # sink argument is trusted on every path (untainted-sink); the
    # interface hop keeps GI blind to it
    plant_taint_decoy(
        pb,
        iface=f"{PKG}.cache.spi.Region",
        impl=f"{PKG}.cache.internal.StandardQueryCache",
        source=f"{PKG}.cache.spi.UpdateTimestampsCache",
    )

    return component(NAME, PKG, pb, known)

"""commons-collections 3.2.1 — the flagship ysoserial component.

Five dataset chains (CommonsCollections1/3/5-style shapes):

* K1 ``TransformedMap.readObject`` -> Transformer family -> ``Method.invoke``
* K2 ``TiedMapEntry.hashCode`` -> ``LazyMap.get`` -> Transformer family
* K3 ``HashBag.readObject`` -> Closure family -> ``InetAddress.getByName``
* K4 ``CursorableLinkedList.readObject`` -> Factory family ->
  ``Files.newOutputStream``
* K5 an ``AnnotationInvocationHandler``-style dynamic-proxy chain
  (static tools must miss it, §V-B)

The Transformer family (InvokerTransformer / ChainedTransformer /
InstantiateTransformer / ConstantTransformer) multiplies into the
component's *unknown* chains: every source reaching
``Transformer.transform`` also reaches the other dangerous
implementations, directly and nested through ChainedTransformer —
including the organic ``HashMap.readObject``-rooted variant through
``TiedMapEntry.hashCode``.
"""

from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.corpus.components._shared import component
from repro.corpus.patterns import (
    emit_sink,
    plant_extends_chain,
    plant_guard_decoy,
    plant_proxy_chain,
    plant_rta_decoy,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE

NAME = "commons-collections(3.2.1)"
PKG = "org.apache.commons.collections"


def build() -> ComponentSpec:
    pb = ProgramBuilder(jar="commons-collections-3.2.1.jar")
    known = []

    # 1. what Serianalyzer is allowed to see: the flood only
    plant_sl_flood(pb, PKG + ".iterators", 73)
    # 2. crowd every sink the real chains use out of SL's caller cap
    plant_sl_crowders(
        pb,
        PKG + ".buffer",
        ["method_invoke", "load_class", "get_by_name", "new_output_stream", "exec"],
    )

    # 3. the Transformer family
    iface = f"{PKG}.Transformer"
    ib = pb.interface(iface)
    ib.abstract_method("transform", params=["java.lang.Object"], returns="java.lang.Object")
    ib.finish()

    with pb.cls(f"{PKG}.functors.InvokerTransformer", implements=[iface, SERIALIZABLE]) as c:
        c.field("iMethodName", "java.lang.Object")
        with c.method("transform", params=["java.lang.Object"], returns="java.lang.Object") as m:
            payload = m.get_field(m.this, "iMethodName")
            emit_sink(m, "method_invoke", payload)
            m.ret(payload)

    with pb.cls(f"{PKG}.functors.InstantiateTransformer", implements=[iface, SERIALIZABLE]) as c:
        c.field("iParamTypes", "java.lang.Object")
        with c.method("transform", params=["java.lang.Object"], returns="java.lang.Object") as m:
            payload = m.get_field(m.this, "iParamTypes")
            emit_sink(m, "load_class", payload)
            m.ret(payload)

    with pb.cls(f"{PKG}.functors.ChainedTransformer", implements=[iface, SERIALIZABLE]) as c:
        c.field("iTransformers", "java.lang.Object[]")
        with c.method("transform", params=["java.lang.Object"], returns="java.lang.Object") as m:
            arr = m.get_field(m.this, "iTransformers")
            inner = m.array_get(arr, 0)
            out = m.invoke_interface(inner, iface, "transform", [m.param(1)], returns="java.lang.Object")
            m.ret(out)

    with pb.cls(f"{PKG}.functors.ConstantTransformer", implements=[iface, SERIALIZABLE]) as c:
        c.field("iConstant", "java.lang.Object")
        with c.method("transform", params=["java.lang.Object"], returns="java.lang.Object") as m:
            v = m.get_field(m.this, "iConstant")
            m.ret(v)

    # K1: TransformedMap.readObject -> Transformer.transform
    with pb.cls(f"{PKG}.map.TransformedMap", implements=["java.util.Map", SERIALIZABLE]) as c:
        c.field("keyTransformer", "java.lang.Object")
        c.field("firstKey", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            m.invoke(m.param(1), "java.io.ObjectInputStream", "defaultReadObject")
            t = m.get_field(m.this, "keyTransformer")
            k = m.get_field(m.this, "firstKey")
            m.invoke_interface(t, iface, "transform", [k], returns="java.lang.Object")
        with c.method("get", params=["java.lang.Object"], returns="java.lang.Object") as m:
            m.ret(m.param(1))
        with c.method("put", params=["java.lang.Object", "java.lang.Object"], returns="java.lang.Object") as m:
            m.ret(m.param(2))
    known.append(
        KnownChainSpec((f"{PKG}.map.TransformedMap", "readObject"),
                       ("java.lang.reflect.Method", "invoke"))
    )

    # K2: TiedMapEntry.hashCode -> LazyMap.get -> Transformer.transform
    with pb.cls(f"{PKG}.map.LazyMap", implements=["java.util.Map", SERIALIZABLE]) as c:
        c.field("factory", "java.lang.Object")
        with c.method("get", params=["java.lang.Object"], returns="java.lang.Object") as m:
            f = m.get_field(m.this, "factory")
            out = m.invoke_interface(f, iface, "transform", [m.param(1)], returns="java.lang.Object")
            m.ret(out)
        with c.method("put", params=["java.lang.Object", "java.lang.Object"], returns="java.lang.Object") as m:
            m.ret(m.param(2))

    with pb.cls(f"{PKG}.keyvalue.TiedMapEntry", implements=["java.util.Map$Entry", SERIALIZABLE]) as c:
        c.field("map", "java.util.Map")
        c.field("key", "java.lang.Object")
        with c.method("getKey", returns="java.lang.Object") as m:
            k = m.get_field(m.this, "key")
            m.ret(k)
        with c.method("getValue", returns="java.lang.Object") as m:
            mp = m.get_field(m.this, "map")
            k = m.get_field(m.this, "key")
            v = m.invoke_interface(mp, "java.util.Map", "get", [k], returns="java.lang.Object")
            m.ret(v)
        with c.method("hashCode", returns="int") as m:
            m.invoke(m.this, f"{PKG}.keyvalue.TiedMapEntry", "getValue", returns="java.lang.Object")
            m.ret(0)
    known.append(
        KnownChainSpec((f"{PKG}.keyvalue.TiedMapEntry", "hashCode"),
                       ("java.lang.reflect.Method", "invoke"))
    )

    # K3: HashBag.readObject -> Closure family -> InetAddress.getByName
    closure = f"{PKG}.Closure"
    cb = pb.interface(closure)
    cb.abstract_method("execute", params=["java.lang.Object"])
    cb.finish()
    with pb.cls(f"{PKG}.functors.ConnectingClosure", implements=[closure, SERIALIZABLE]) as c:
        c.field("host", "java.lang.Object")
        with c.method("execute", params=["java.lang.Object"]) as m:
            payload = m.get_field(m.this, "host")
            emit_sink(m, "get_by_name", payload)
    with pb.cls(f"{PKG}.bag.HashBag", implements=[SERIALIZABLE]) as c:
        c.field("closure", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            cl = m.get_field(m.this, "closure")
            m.invoke_interface(cl, closure, "execute", [cl])
    known.append(
        KnownChainSpec((f"{PKG}.bag.HashBag", "readObject"),
                       ("java.net.InetAddress", "getByName"))
    )

    # K4: CursorableLinkedList.readObject -> Factory family -> Files
    factory = f"{PKG}.Factory"
    fb = pb.interface(factory)
    fb.abstract_method("create", returns="java.lang.Object")
    fb.finish()
    with pb.cls(f"{PKG}.functors.PrototypeFactory", implements=[factory, SERIALIZABLE]) as c:
        c.field("iPrototype", "java.lang.Object")
        with c.method("create", returns="java.lang.Object") as m:
            payload = m.get_field(m.this, "iPrototype")
            emit_sink(m, "new_output_stream", payload)
            m.ret(payload)
    with pb.cls(f"{PKG}.list.CursorableLinkedList", implements=[SERIALIZABLE]) as c:
        c.field("factory", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            f = m.get_field(m.this, "factory")
            m.invoke_interface(f, factory, "create", returns="java.lang.Object")
    known.append(
        KnownChainSpec((f"{PKG}.list.CursorableLinkedList", "readObject"),
                       ("java.nio.file.Files", "newOutputStream"))
    )

    # K5: the dynamic-proxy chain — effective, invisible to static tools
    known.append(
        plant_proxy_chain(
            pb,
            source=f"{PKG}.map.DefaultedMap",
            handler=f"{PKG}.functors.InvokerClosureHandler",
            sink_key="method_invoke",
        )
    )

    # 4. decoys: four guard-broken chains (Tabby's fakes); one hides
    #    behind interface dispatch so GI reports only three
    plant_guard_decoy(pb, f"{PKG}.comparators.ComparatorChain", f"{PKG}.CollectionsConfig")
    plant_guard_decoy(pb, f"{PKG}.keyvalue.MultiKey", f"{PKG}.CollectionsConfig")
    plant_guard_decoy(pb, f"{PKG}.map.Flat3Map", f"{PKG}.CollectionsConfig")
    plant_guard_decoy(
        pb,
        f"{PKG}.bidimap.TreeBidiMap",
        f"{PKG}.CollectionsConfig",
        through_interface=f"{PKG}.OrderedBidiMapGuard",
    )

    # a fifth fake only whole-CPG refinement can explain: the observer
    # callback's sole implementation is never instantiated, so RTA
    # refutes the chain (rta-dead-dispatch); the guard pass cannot
    plant_rta_decoy(
        pb,
        iface=f"{PKG}.observed.ModificationHandler",
        impl=f"{PKG}.observed.standard.StandardModificationHandler",
        source=f"{PKG}.observed.ObservableCollection",
    )

    # an effective extension-dispatch chain the dataset does not record
    # (one of the few unknowns GadgetInspector can also see)
    plant_extends_chain(
        pb,
        base=f"{PKG}.collection.AbstractCollectionDecorator",
        sub=f"{PKG}.collection.UnmodifiableCollection",
        source=f"{PKG}.collection.CompositeCollection",
        sink_key="db_parse",
        method="decorated",
        payload_field="collection",
    )

    return component(NAME, PKG, pb, known)

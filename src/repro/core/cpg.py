"""Code Property Graph construction (§III-B).

Builds the paper's CPG out of three constituent graphs:

* **ORG** (Object Relationship Graph): Class and Method data nodes plus
  ``EXTEND``, ``INTERFACE`` and ``HAS`` edges (Table II, top rows);
* **PCG** (Precise Call Graph): ``CALL`` edges from the controllability
  analysis, each carrying its ``POLLUTED_POSITION``; call sites whose
  PP is all-∞ are pruned (§III-C);
* **MAG** (Method Alias Graph): ``ALIAS`` edges from an overriding
  method to the method it can replace in its superclass or interfaces
  (Formula 1).

Callees that are not defined in the analysed classes (JDK methods such
as ``Runtime.exec``) become *phantom* method/class nodes, exactly like
Soot's phantom refs — sink methods are typically phantom nodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.controllability import ControllabilityAnalysis, MethodSummary
from repro.core.parallel import ParallelConfig, parallel_summary_records
from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.core.summary_cache import (
    SummaryCache,
    catalog_token,
    decode_summary,
    dependency_closures,
    encode_summary,
)
from repro.graphdb.graph import Node, PropertyGraph
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod

__all__ = ["CPG", "CPGBuilder", "CPGStatistics"]

# node labels
CLASS_LABEL = "Class"
METHOD_LABEL = "Method"

# relationship types (Table II)
EXTEND = "EXTEND"
INTERFACE = "INTERFACE"
HAS = "HAS"
CALL = "CALL"
ALIAS = "ALIAS"

#: relationship property set (only ever to ``True``) by the RTA pass in
#: :mod:`repro.analysis.rta` on CALL/ALIAS edges whose receiver type is
#: never constructible; absence means the edge is live.  Defined here so
#: the path finder can test it without importing ``repro.analysis``.
RTA_DEAD = "RTA_DEAD"

#: the property indexes every CPG declares, in declaration order.  The
#: order is part of the graph fingerprint (``IndexManager`` preserves
#: insertion order), so anything that rebuilds an index manager for a
#: CPG — notably the incremental renumber pass — must replay exactly
#: this sequence, not a sorted view.
CPG_INDEX_ORDER = (
    (CLASS_LABEL, "NAME"),
    (METHOD_LABEL, "NAME"),
    (METHOD_LABEL, "SIGNATURE"),
    (METHOD_LABEL, "IS_SINK"),
    (METHOD_LABEL, "IS_SOURCE"),
)


@dataclass
class CPGStatistics:
    """The counters Table VIII reports per corpus, plus per-phase
    timings and cache/parallel counters for the scaling pipeline."""

    jar_count: int = 0
    class_node_count: int = 0
    method_node_count: int = 0
    relationship_edge_count: int = 0
    pruned_call_sites: int = 0
    build_seconds: float = 0.0
    #: wall-clock per build phase: summaries / org / pcg / mag
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: worker processes used for the summary phase (0 = serial)
    parallel_workers: int = 0
    #: methods analysed by Algorithm 1 this build
    analyzed_method_count: int = 0
    #: methods whose summaries came from the on-disk cache
    cached_method_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def as_row(self) -> Dict[str, float]:
        return {
            "jar_count": self.jar_count,
            "class_nodes": self.class_node_count,
            "method_nodes": self.method_node_count,
            "relationship_edges": self.relationship_edge_count,
            "pruned_call_sites": self.pruned_call_sites,
            "build_seconds": round(self.build_seconds, 3),
        }

    def profile_lines(self) -> List[str]:
        """Human-readable per-phase/cache/worker report (``--profile``)."""
        lines = []
        for phase in ("summaries", "org", "pcg", "mag"):
            if phase in self.phase_seconds:
                lines.append(f"phase {phase:<10} {self.phase_seconds[phase]:8.3f}s")
        lines.append(
            f"summary methods: {self.analyzed_method_count} analyzed, "
            f"{self.cached_method_count} from cache"
        )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"summary cache: {self.cache_hits} class hits, "
                f"{self.cache_misses} misses"
            )
        lines.append(
            "summary workers: "
            + (str(self.parallel_workers) if self.parallel_workers else "serial")
        )
        lines.append(f"total build: {self.build_seconds:.3f}s")
        return lines


class CPG:
    """The built code property graph plus its lookup helpers."""

    def __init__(
        self,
        graph: PropertyGraph,
        hierarchy: ClassHierarchy,
        statistics: CPGStatistics,
        summaries: Dict[str, MethodSummary],
    ):
        self.graph = graph
        self.hierarchy = hierarchy
        self.statistics = statistics
        self.summaries = summaries

    # -- lookups ----------------------------------------------------------

    def class_node(self, name: str) -> Optional[Node]:
        return self.graph.find_node(CLASS_LABEL, NAME=name)

    def method_node(
        self, class_name: str, method_name: str, arity: Optional[int] = None
    ) -> Optional[Node]:
        props: Dict[str, object] = {"CLASSNAME": class_name, "NAME": method_name}
        if arity is not None:
            props["ARITY"] = arity
        return self.graph.find_node(METHOD_LABEL, **props)

    def method_nodes(self, method_name: str) -> List[Node]:
        return self.graph.find_nodes(METHOD_LABEL, NAME=method_name)

    def sink_nodes(self) -> List[Node]:
        return self.graph.find_nodes(METHOD_LABEL, IS_SINK=True)

    def source_nodes(self) -> List[Node]:
        return self.graph.find_nodes(METHOD_LABEL, IS_SOURCE=True)

    def __repr__(self) -> str:
        s = self.statistics
        return (
            f"<CPG {s.class_node_count} classes, {s.method_node_count} methods, "
            f"{s.relationship_edge_count} edges>"
        )


class CPGBuilder:
    """Builds a :class:`CPG` from a class hierarchy."""

    def __init__(
        self,
        hierarchy: ClassHierarchy,
        sinks: Optional[SinkCatalog] = None,
        sources: Optional[SourceCatalog] = None,
        prune_uncontrollable_calls: bool = True,
        parallel: Optional[Union[ParallelConfig, int]] = None,
        cache: Optional[Union[SummaryCache, str]] = None,
        max_recursion_depth: int = 64,
    ):
        self.hierarchy = hierarchy
        self.sinks = sinks if sinks is not None else SinkCatalog()
        self.sources = sources if sources is not None else SourceCatalog.extended()
        #: ablation hook: keep all-∞ call edges (turns the PCG back into
        #: the raw MCG, as the paper's baselines effectively use)
        self.prune_uncontrollable_calls = prune_uncontrollable_calls
        if isinstance(parallel, int):
            # int shorthand: 1 = serial, N>1 = N workers, 0 = one per CPU
            parallel = (
                ParallelConfig(workers=parallel) if parallel != 1 else None
            )
        self.parallel = parallel
        if isinstance(cache, str):
            cache = SummaryCache(
                cache, catalog_token(self.sinks, self.sources)
            )
        self.cache = cache
        self.max_recursion_depth = max_recursion_depth

        self._graph = PropertyGraph()
        self._class_nodes: Dict[str, Node] = {}
        self._method_nodes: Dict[Tuple[str, str, int], Node] = {}
        self._jar_names: set = set()
        #: signatures whose summaries involved cycle breaking in the last
        #: build — root-final but not persistable; the incremental
        #: analyzer re-derives them on every update, mirroring the cache
        #: discipline (cycle-tainted entries are never stored either)
        self.last_tainted: set = set()

    # -- public -------------------------------------------------------------

    def build(self) -> CPG:
        started = time.perf_counter()
        graph = self._graph
        for label, key in CPG_INDEX_ORDER:
            graph.indexes.create_index(label, key)

        phases: Dict[str, float] = {}
        t0 = time.perf_counter()
        summaries, analyzed, cached = self._compute_summaries()
        phases["summaries"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        self._build_org()
        phases["org"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        pruned = self._build_pcg(summaries)
        phases["pcg"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        self._build_mag()
        phases["mag"] = time.perf_counter() - t0

        stats = CPGStatistics(
            jar_count=len(self._jar_names),
            class_node_count=len(
                [n for n in graph.nodes(CLASS_LABEL)]
            ),
            method_node_count=len([n for n in graph.nodes(METHOD_LABEL)]),
            relationship_edge_count=graph.relationship_count,
            pruned_call_sites=pruned,
            build_seconds=time.perf_counter() - started,
            phase_seconds=phases,
            parallel_workers=(
                self.parallel.resolved_workers() if self.parallel else 0
            ),
            analyzed_method_count=analyzed,
            cached_method_count=cached,
            cache_hits=self.cache.stats.hits if self.cache else 0,
            cache_misses=self.cache.stats.misses if self.cache else 0,
        )
        return CPG(graph, self.hierarchy, stats, summaries)

    # -- summary phase (Algorithm 1, cached and/or sharded) -----------------

    def _compute_summaries(self) -> Tuple[Dict[str, MethodSummary], int, int]:
        """Summaries for every body-carrying method, in sorted key
        order.  Returns ``(summaries, analyzed_count, cached_count)``.

        The cache is consulted per class; missed classes are analysed
        (serially or across the worker pool) with the hits seeded into
        the memo table, then written back.  Root-final determinism makes
        every combination of {serial, parallel} x {cold, warm} produce
        identical values.
        """
        all_classes = self.hierarchy.classes
        seeded: Dict[str, MethodSummary] = {}
        missed_classes: List[JavaClass] = []
        class_keys: Dict[str, str] = {}

        if self.cache is not None:
            from repro.jvm.jasm import dump_class

            class_texts = {cls.name: dump_class(cls) for cls in all_classes}
            closures = dependency_closures(self.hierarchy)
            for cls in all_classes:
                key = self.cache.class_key(
                    cls.name, class_texts, closures[cls.name]
                )
                class_keys[cls.name] = key
                records = self.cache.load(key, cls.name)
                decoded: List[MethodSummary] = []
                if records is not None:
                    try:
                        decoded = [
                            decode_summary(record, self.hierarchy)
                            for record in records
                        ]
                    except (KeyError, TypeError, ValueError):
                        records = None  # stale entry: fall back to analysis
                if records is None:
                    missed_classes.append(cls)
                else:
                    for summary in decoded:
                        seeded[summary.method.signature.signature] = summary
        else:
            missed_classes = list(all_classes)

        summaries: Dict[str, MethodSummary] = dict(seeded)
        tainted: set = set()
        missed_methods = [
            m
            for cls in missed_classes
            for m in cls.methods.values()
            if m.has_body
        ]

        if self.parallel is not None and missed_classes:
            records, _recursive, par_tainted = parallel_summary_records(
                all_classes,
                [cls.name for cls in missed_classes],
                self.parallel,
                max_recursion_depth=self.max_recursion_depth,
            )
            tainted = set(par_tainted)
            for record in records:
                summary = decode_summary(record, self.hierarchy)
                summaries[summary.method.signature.signature] = summary
        elif missed_classes:
            analysis = ControllabilityAnalysis(
                self.hierarchy, max_recursion_depth=self.max_recursion_depth
            )
            analysis.seed_summaries(seeded.values())
            analysis.analyze_methods(missed_methods)
            tainted = set(analysis.cycle_tainted)
            for method in missed_methods:
                key = method.signature.signature
                summaries[key] = analysis.summary_for(method)

        if self.cache is not None:
            for cls in missed_classes:
                keys = [
                    m.signature.signature
                    for m in cls.methods.values()
                    if m.has_body
                ]
                if any(key in tainted for key in keys):
                    self.cache.stats.skipped_tainted += 1
                    continue
                records = [
                    encode_summary(summaries[key]) for key in sorted(keys)
                ]
                self.cache.store(class_keys[cls.name], cls.name, records)

        self.last_tainted = set(tainted)
        ordered = {key: summaries[key] for key in sorted(summaries)}
        return ordered, len(missed_methods), len(seeded)

    # -- ORG ---------------------------------------------------------------------

    def _class_node(self, name: str) -> Node:
        """Node for a defined class, or a phantom node otherwise."""
        node = self._class_nodes.get(name)
        if node is not None:
            return node
        cls = self.hierarchy.get(name)
        if cls is not None:
            props = {
                "NAME": cls.name,
                "IS_INTERFACE": cls.is_interface,
                "IS_ABSTRACT": cls.is_abstract,
                "IS_SERIALIZABLE": self.hierarchy.is_serializable(cls.name),
                "SUPER": cls.super_name,
                "INTERFACES": list(cls.interface_names),
                "JAR": cls.jar_name,
                "IS_PHANTOM": False,
            }
            if cls.jar_name:
                self._jar_names.add(cls.jar_name)
        else:
            props = {"NAME": name, "IS_PHANTOM": True}
        node = self._graph.create_node([CLASS_LABEL], props)
        self._class_nodes[name] = node
        return node

    def _defined_method_node(self, method: JavaMethod) -> Node:
        key = (method.class_name, method.name, method.arity)
        node = self._method_nodes.get(key)
        if node is not None:
            return node
        sig = method.signature
        sink = self.sinks.lookup(method.class_name, method.name)
        props = {
            "NAME": method.name,
            "CLASSNAME": method.class_name,
            "SIGNATURE": sig.signature,
            "SUBSIGNATURE": sig.sub_signature,
            "ARITY": method.arity,
            "IS_STATIC": method.is_static,
            "IS_ABSTRACT": method.is_abstract,
            "HAS_BODY": method.has_body,
            "IS_PHANTOM": False,
            "IS_SOURCE": self.sources.is_source(method, self.hierarchy),
            "IS_SINK": sink is not None,
        }
        if sink is not None:
            props["SINK_TYPE"] = sink.category
            props["TRIGGER_CONDITION"] = list(sink.trigger_condition)
        node = self._graph.create_node([METHOD_LABEL], props)
        self._method_nodes[key] = node
        return node

    def _phantom_method_node(self, class_name: str, method_name: str, arity: int) -> Node:
        key = (class_name, method_name, arity)
        node = self._method_nodes.get(key)
        if node is not None:
            return node
        sink = self.sinks.lookup(class_name, method_name)
        props = {
            "NAME": method_name,
            "CLASSNAME": class_name,
            "SIGNATURE": f"<{class_name}: {method_name}/{arity}>",
            "ARITY": arity,
            "HAS_BODY": False,
            "IS_PHANTOM": True,
            "IS_SOURCE": False,
            "IS_SINK": sink is not None,
        }
        if sink is not None:
            props["SINK_TYPE"] = sink.category
            props["TRIGGER_CONDITION"] = list(sink.trigger_condition)
        node = self._graph.create_node([METHOD_LABEL], props)
        self._method_nodes[key] = node
        # attach the phantom method to its (possibly phantom) class
        self._graph.create_relationship(HAS, self._class_node(class_name), node)
        return node

    def _build_org(self) -> None:
        """Class/method nodes plus EXTEND/INTERFACE/HAS edges.

        Classes are visited in sorted-name order so node IDs do not
        depend on classpath order (jar listing order is filesystem
        dependent; the CPG must not be)."""
        for cls in sorted(self.hierarchy.classes, key=lambda c: c.name):
            class_node = self._class_node(cls.name)
            if cls.super_name:
                self._graph.create_relationship(
                    EXTEND, class_node, self._class_node(cls.super_name)
                )
            for iface in cls.interface_names:
                self._graph.create_relationship(
                    INTERFACE, class_node, self._class_node(iface)
                )
            for method in cls.methods.values():
                method_node = self._defined_method_node(method)
                self._graph.create_relationship(HAS, class_node, method_node)

    # -- PCG ---------------------------------------------------------------------

    def _build_pcg(self, summaries: Dict[str, MethodSummary]) -> int:
        """CALL edges with POLLUTED_POSITION; returns pruned-site count.

        Iterates in sorted signature order so phantom-node creation and
        edge insertion are reproducible regardless of how the summary
        map was assembled (serial, sharded, or cache-seeded)."""
        pruned = 0
        for key in sorted(summaries):
            summary = summaries[key]
            caller_node = self._defined_method_node(summary.method)
            for site in summary.call_sites:
                if site.pruned and self.prune_uncontrollable_calls:
                    pruned += 1
                    continue
                if site.kind == "dynamic":
                    # reflective/proxy call: statically unresolvable (§V-B)
                    continue
                if site.resolved is not None:
                    callee_node = self._defined_method_node(site.resolved)
                else:
                    callee_node = self._phantom_method_node(
                        site.callee_class, site.callee_name, site.arity
                    )
                # the method Action doubles as a cached edge property so
                # path queries can inspect call details (§III-C)
                self._graph.create_relationship(
                    CALL,
                    caller_node,
                    callee_node,
                    {
                        "POLLUTED_POSITION": list(site.polluted_position),
                        "KIND": site.kind,
                        "SITE_INDEX": site.site_index,
                        "PRUNED": site.pruned,
                    },
                )
        # store each method's Action on its node
        for key in sorted(summaries):
            summary = summaries[key]
            node = self._defined_method_node(summary.method)
            self._graph.set_node_property(node, "ACTION", summary.action.to_property())
        return pruned

    # -- MAG ---------------------------------------------------------------------

    def _build_mag(self) -> None:
        """ALIAS edges per Formula 1: subclass/implementation method ->
        the superclass/interface method it may replace.  Besides defined
        parents, a phantom parent method node created by some call site
        is linked too (the Object.hashCode situation when the JDK class
        is not part of the corpus)."""
        for cls in sorted(self.hierarchy.classes, key=lambda c: c.name):
            for method in cls.methods.values():
                method_node = self._defined_method_node(method)
                linked: set = set()
                for parent in self.hierarchy.alias_parents(method):
                    parent_node = self._defined_method_node(parent)
                    if parent_node.id not in linked:
                        linked.add(parent_node.id)
                        self._graph.create_relationship(ALIAS, method_node, parent_node)
                # phantom parents
                for super_name in self.hierarchy.supertypes(cls.name):
                    if self.hierarchy.get(super_name) is not None:
                        continue
                    key = (super_name, method.name, method.arity)
                    phantom = self._method_nodes.get(key)
                    if phantom is not None and phantom.id not in linked:
                        linked.add(phantom.id)
                        self._graph.create_relationship(ALIAS, method_node, phantom)

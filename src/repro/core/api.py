"""The Tabby facade — the library's primary entry point.

Typical usage::

    from repro import Tabby

    tabby = Tabby()
    tabby.add_jar(archive)                  # or add_classes / load_classpath
    cpg = tabby.build_cpg()                 # semantic extraction + ORG/PCG/MAG
    chains = tabby.find_gadget_chains()     # Algorithms 2-3 over the CPG
    for chain in chains:
        print(chain.render())

    tabby.save_cpg("project.cpg")           # binary snapshot (§IV-F)
    rows = tabby.query("MATCH (m:Method {IS_SINK: true}) RETURN m.NAME")

    warm = Tabby.load_cpg("project.cpg")    # re-queryable across sessions
    warm.find_gadget_chains()
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.chains import GadgetChain
from repro.core.cpg import (
    CLASS_LABEL,
    CPG,
    CPGBuilder,
    CPGStatistics,
    METHOD_LABEL,
)
from repro.core.cpg_check import CPGCheckIssue, verify_cpg
from repro.core.pathfinder import GadgetChainFinder, SearchStatistics
from repro.core.refine import GuardFeasibilityRefiner
from repro.core.sinks import SinkCatalog, SinkMethod
from repro.core.sources import SourceCatalog
from repro.errors import AnalysisError
from repro.graphdb.query import QueryResult, run_query
from repro.graphdb.storage import load_graph, open_graph, save_graph
from repro.graphdb.traversal import Uniqueness
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.jar import JarArchive, load_classpath
from repro.jvm.model import JavaClass

__all__ = ["Tabby"]


class Tabby:
    """End-to-end gadget-chain detection over jasm classes/jars."""

    def __init__(
        self,
        sinks: Optional[SinkCatalog] = None,
        sources: Optional[SourceCatalog] = None,
        prune_uncontrollable_calls: bool = True,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        cache_max_mb: Optional[float] = None,
    ):
        self.sinks = sinks if sinks is not None else SinkCatalog()
        self.sources = sources if sources is not None else SourceCatalog.extended()
        self.prune_uncontrollable_calls = prune_uncontrollable_calls
        #: >1 shards the summary phase across a process pool; 0 = one
        #: worker per available CPU (see repro.core.parallel)
        self.workers = workers
        #: persistent summary cache directory (see repro.core.summary_cache)
        self.cache_dir = cache_dir
        #: LRU size cap for the summary cache (None = unbounded)
        self.cache_max_mb = cache_max_mb
        self._classes: List[JavaClass] = []
        self._cpg: Optional[CPG] = None
        #: diagnostics from the last find_gadget_chains() run
        self.last_search_stats = SearchStatistics()
        #: chains dropped by the last refined run (guard + verdict layer)
        self.last_refuted: List[GadgetChain] = []
        #: the same chains paired with why each one was refuted
        self.last_refutations: List[tuple] = []
        #: full verdict layer output (RefinementResult) when refine= ran
        self.last_refine = None

    # -- input -------------------------------------------------------------

    def add_classes(self, classes: Iterable[JavaClass]) -> "Tabby":
        self._classes.extend(classes)
        self._cpg = None
        return self

    def add_jar(self, archive: JarArchive) -> "Tabby":
        return self.add_classes(archive.classes)

    def load_classpath(self, paths: Sequence[str]) -> "Tabby":
        for archive in load_classpath(paths):
            self.add_jar(archive)
        return self

    def add_sinks(self, extra: Iterable[SinkMethod]) -> "Tabby":
        """Register custom sink methods before building the CPG."""
        self.sinks = self.sinks.with_extra(extra)
        self._cpg = None
        return self

    @property
    def class_count(self) -> int:
        return len(self._classes)

    # -- analysis -------------------------------------------------------------

    def build_cpg(self) -> CPG:
        """Semantic extraction, controllability analysis, and CPG
        assembly (ORG + PCG + MAG).  Idempotent until inputs change."""
        if self._cpg is not None:
            return self._cpg
        if not self._classes:
            raise AnalysisError("no classes loaded; call add_classes/add_jar first")
        hierarchy = ClassHierarchy(self._classes)
        builder = CPGBuilder(
            hierarchy,
            sinks=self.sinks,
            sources=self.sources,
            prune_uncontrollable_calls=self.prune_uncontrollable_calls,
            parallel=self.workers,
            cache=self._summary_cache(),
        )
        self._cpg = builder.build()
        return self._cpg

    def _summary_cache(self):
        """The configured summary cache: a :class:`SummaryCache` when a
        size cap is set (the builder's plain-string path cannot carry
        ``max_mb``), the raw directory otherwise."""
        if self.cache_dir and self.cache_max_mb is not None:
            from repro.core.summary_cache import SummaryCache, catalog_token

            return SummaryCache(
                self.cache_dir,
                catalog_token(self.sinks, self.sources),
                max_mb=self.cache_max_mb,
            )
        return self.cache_dir

    @property
    def cpg(self) -> CPG:
        return self.build_cpg()

    def find_gadget_chains(
        self,
        max_depth: int = 12,
        source_filter: Optional[str] = None,
        follow_alias: bool = True,
        max_results_per_sink: Optional[int] = 200,
        uniqueness: Uniqueness = Uniqueness.RELATIONSHIP_PATH,
        refine_guards: bool = False,
        refine: Optional[Sequence[str]] = None,
        skip_rta_dead: bool = False,
        optimize: bool = True,
        search_workers: Optional[int] = None,
    ) -> List[GadgetChain]:
        """Run the tabby-path-finder search over the CPG.

        ``refine_guards=True`` additionally drops chains whose
        connecting call sites sit behind constant-false guards (see
        :mod:`repro.core.refine`).  ``refine=("rta", "taint")`` layers
        the whole-CPG verdict engine on top (see
        :mod:`repro.analysis`): RTA type-reachability plus
        field-sensitive taint summaries, each refuting chains only on
        a sound argument (UNKNOWN never refutes).  Both are off by
        default: refinement is an extension beyond the paper pipeline
        and the refined list is always a verbatim subset of the
        unrefined one.  Refuted chains land in :attr:`last_refuted`,
        with their :class:`~repro.core.refine.RefutationReason` in
        :attr:`last_refutations` and the full verdict layer output in
        :attr:`last_refine`.

        ``skip_rta_dead=True`` makes the *search itself* skip edges
        annotated by :meth:`annotate_rta` — a performance device whose
        output equals post-hoc RTA filtering only when
        ``max_results_per_sink`` is ``None`` (truncation composes
        differently with pruning).

        ``optimize=False`` restores the baseline search engine (no
        reachability pruning or negative caching) — the chain set is
        identical either way.  ``search_workers`` shards the per-sink
        search across a process pool (``None`` reuses :attr:`workers`,
        1 = serial, 0 = one per CPU); diagnostics for the last run are
        kept in :attr:`last_search_stats`.
        """
        cpg = self.build_cpg()
        if refine and not cpg.hierarchy.classes:
            raise AnalysisError(
                "refine= needs the class hierarchy; a snapshot-loaded CPG "
                "carries none (re-add the classes via add_classes/add_jar)"
            )
        finder = GadgetChainFinder(
            cpg,
            max_depth=max_depth,
            follow_alias=follow_alias,
            max_results_per_sink=max_results_per_sink,
            uniqueness=uniqueness,
            optimize=optimize,
            workers=self.workers if search_workers is None else search_workers,
            skip_rta_dead=skip_rta_dead,
        )
        chains = finder.find_chains(source_filter=source_filter)
        self.last_search_stats = finder.last_search_stats
        self.last_refuted = []
        self.last_refutations = []
        self.last_refine = None
        if refine_guards:
            refiner = GuardFeasibilityRefiner(cpg.hierarchy)
            chains, guard_refuted = refiner.refine_with_reasons(chains)
            self.last_refutations.extend(guard_refuted)
        if refine:
            # local import: repro.analysis itself imports core submodules
            from repro.analysis.chain_refiner import ChainRefiner

            result = ChainRefiner(
                cpg.hierarchy, modes=tuple(refine), cache_dir=self.cache_dir
            ).refine(chains)
            self.last_refine = result
            self.last_refutations.extend(result.refuted)
            chains = result.kept
        self.last_refuted = [chain for chain, _ in self.last_refutations]
        return chains

    def diff_versions(
        self,
        old_classes: Iterable[JavaClass],
        new_classes: Iterable[JavaClass],
        *,
        max_depth: int = 12,
        source_filter: Optional[str] = None,
        follow_alias: bool = True,
        max_results_per_sink: Optional[int] = 200,
        uniqueness: Uniqueness = Uniqueness.RELATIONSHIP_PATH,
        refine_guards: bool = False,
        refine: Optional[Sequence[str]] = None,
        optimize: bool = True,
    ):
        """Compare gadget chains across two versions of a classpath.

        Builds the old version cold, patches to the new version via
        :class:`~repro.core.incremental.IncrementalAnalyzer` (output
        bit-identical to a cold rebuild), and partitions the chains
        into appeared/disappeared/survived
        (:class:`~repro.core.incremental.ChainDiff`).  When
        ``refine_guards``/``refine`` are set, the verdict layer runs
        over the *appeared* chains only — the new attack surface.

        Afterwards this instance holds the NEW version's CPG, so
        :meth:`query`/:meth:`save_cpg` operate on the updated graph.
        """
        from repro.core.incremental import (
            ChainSearchConfig,
            IncrementalAnalyzer,
            apply_refinement_verdicts,
            diff_chains,
        )

        session = IncrementalAnalyzer(
            list(old_classes),
            sinks=self.sinks,
            sources=self.sources,
            prune_uncontrollable_calls=self.prune_uncontrollable_calls,
            cache_dir=self.cache_dir,
            cache_max_mb=self.cache_max_mb,
            search=ChainSearchConfig(
                max_depth=max_depth,
                source_filter=source_filter,
                follow_alias=follow_alias,
                max_results_per_sink=max_results_per_sink,
                uniqueness=uniqueness,
                optimize=optimize,
                workers=self.workers,
            ),
        )
        old_chains = list(session.chains)
        result = session.update(list(new_classes))
        diff = diff_chains(old_chains, result.chains)
        diff.statistics = result.statistics
        if refine_guards or refine:
            apply_refinement_verdicts(
                diff,
                session.hierarchy,
                refine_guards=refine_guards,
                refine=refine,
                cache_dir=self.cache_dir,
            )
        self._classes = list(session.classes)
        self._cpg = session.cpg
        self.last_search_stats = session.last_search_stats
        return diff

    def annotate_rta(self):
        """Run RTA type-reachability over the built CPG, marking
        provably-dead dispatch edges with ``RTA_DEAD`` (see
        :mod:`repro.analysis.rta`).  Returns the
        :class:`~repro.analysis.rta.RTAResult` counters.  Annotated
        edges are skipped by ``find_gadget_chains(skip_rta_dead=True)``
        and survive :meth:`save_cpg` round-trips."""
        from repro.analysis.rta import annotate_type_reachability

        return annotate_type_reachability(self.build_cpg())

    def check_cpg(self) -> List[CPGCheckIssue]:
        """Verify the structural invariants of the built CPG."""
        return verify_cpg(self.build_cpg())

    # -- persistence & custom queries ---------------------------------------------

    def save_cpg(self, path: str, format: Optional[str] = None) -> None:
        """Persist the CPG to ``path``.

        ``format`` is ``"v3"`` (the mmap-able zero-copy snapshot),
        ``"binary"``/``"v2"`` (the v2 columnar snapshot), ``"json"``
        (the byte-stable v1 document) or ``None``/``"auto"``: v3 unless
        the path ends in ``.json``/``.json.gz``.  :meth:`load_cpg` and
        ``load_graph`` auto-detect every format.
        """
        save_graph(self.build_cpg().graph, path, format=format)

    @classmethod
    def load_cpg(cls, path: str, mmap: bool = True, **kwargs) -> "Tabby":
        """Rebuild a queryable/searchable Tabby from a persisted CPG.

        Accepts every snapshot format (auto-detected).  With ``mmap``
        (the default) a v3 snapshot is opened as a zero-copy read-only
        view — O(header) open, pages shared with any other process on
        the same file — while v1/v2 files decode as before;
        ``mmap=False`` forces a full decode into a mutable
        ``PropertyGraph`` for every format.  The returned instance
        supports :meth:`query` and :meth:`find_gadget_chains`
        immediately — the §IV-F warm-start workflow — but carries no
        class hierarchy, so features that need the original classes
        (``refine_guards``, verification, payload synthesis) require
        re-adding them via :meth:`add_classes`/:meth:`add_jar` (which
        discards the loaded CPG and rebuilds).
        """
        tabby = cls(**kwargs)
        graph = open_graph(path) if mmap else load_graph(path)
        statistics = CPGStatistics(
            class_node_count=graph.indexes.label_count(CLASS_LABEL),
            method_node_count=graph.indexes.label_count(METHOD_LABEL),
            relationship_edge_count=graph.relationship_count,
        )
        tabby._cpg = CPG(graph, ClassHierarchy([]), statistics, {})
        return tabby

    def query(
        self,
        cypher: str,
        *,
        optimize: bool = True,
        explain: bool = False,
        profile: bool = False,
    ) -> QueryResult:
        """Run a Cypher-subset query against the CPG.

        ``optimize=False`` selects the legacy naive interpreter;
        ``explain=True`` returns only the plan (``result.plan``) without
        executing, and ``profile=True`` executes while collecting
        per-operator row/time counters on the plan.
        """
        return run_query(
            self.build_cpg().graph,
            cypher,
            optimize=optimize,
            explain=explain,
            profile=profile,
        )

"""Sink-method catalog with Trigger_Conditions (Table VII).

The paper summarises 38 sink methods; Table VII prints a excerpt and
the rest live on the companion website.  This catalog reproduces the
printed rows verbatim and completes the set to 38 with the standard
gadget-chain sinks of the ysoserial/marshalsec ecosystem, each tagged
with its category and Trigger_Condition (TC).

A TC is a list of frame positions that must be attacker-controllable
for the sink to be dangerous: ``0`` = the receiver, ``i`` = the i-th
argument (Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["SinkMethod", "SinkCatalog", "DEFAULT_SINKS"]


@dataclass(frozen=True)
class SinkMethod:
    """One dangerous method and what must be controllable to abuse it."""

    class_name: str
    method_name: str
    category: str
    trigger_condition: Tuple[int, ...]

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.method_name}"

    def __str__(self) -> str:
        return f"{self.qualified_name}() [{self.category}] TC={list(self.trigger_condition)}"


def _s(class_name: str, method_name: str, category: str, tc: Iterable[int]) -> SinkMethod:
    return SinkMethod(class_name, method_name, category, tuple(tc))


#: The 38-entry sink catalog.  The first 13 rows are Table VII verbatim.
DEFAULT_SINKS: List[SinkMethod] = [
    # --- Table VII (printed excerpt) ---------------------------------
    _s("java.nio.file.Files", "newOutputStream", "FILE", [1]),
    _s("java.io.File", "delete", "FILE", [0]),
    _s("java.lang.reflect.Method", "invoke", "CODE", [0, 1]),
    _s("java.lang.ClassLoader", "loadClass", "CODE", [0, 1]),
    _s("javax.naming.Context", "lookup", "JNDI", [1]),
    _s("java.rmi.registry.Registry", "lookup", "JNDI", [1]),
    _s("java.lang.Runtime", "exec", "EXEC", [1]),
    _s("java.lang.ProcessImpl", "start", "EXEC", [1]),
    _s("javax.xml.parsers.DocumentBuilder", "parse", "XXE", [1]),
    _s("javax.xml.transform.Transformer", "transform", "XXE", [1]),
    _s("java.net.InetAddress", "getByName", "SSRF", [1]),
    _s("java.net.URL", "openConnection", "SSRF", [0]),
    _s("java.lang.Object", "readObject", "JDV", [0]),
    # --- completion to 38 (website set) ------------------------------
    _s("java.io.ObjectInputStream", "readObject", "JDV", [0]),
    _s("java.io.FileOutputStream", "<init>", "FILE", [1]),
    _s("java.io.FileInputStream", "<init>", "FILE", [1]),
    _s("java.nio.file.Files", "delete", "FILE", [1]),
    _s("java.nio.file.Files", "write", "FILE", [1]),
    _s("java.lang.ProcessBuilder", "start", "EXEC", [0]),
    _s("java.lang.ProcessBuilder", "<init>", "EXEC", [1]),
    _s("java.lang.Class", "forName", "CODE", [1]),
    _s("java.lang.Class", "newInstance", "CODE", [0]),
    _s("java.lang.reflect.Constructor", "newInstance", "CODE", [0]),
    _s("java.lang.invoke.MethodHandle", "invoke", "CODE", [0, 1]),
    _s("java.net.URLClassLoader", "newInstance", "CODE", [1]),
    _s("javax.script.ScriptEngine", "eval", "CODE", [1]),
    _s("java.beans.Expression", "<init>", "CODE", [1, 2]),
    _s("com.sun.org.apache.xalan.internal.xsltc.trax.TemplatesImpl", "newTransformer", "CODE", [0]),
    _s("com.sun.org.apache.xalan.internal.xsltc.trax.TemplatesImpl", "getOutputProperties", "CODE", [0]),
    _s("javax.naming.InitialContext", "lookup", "JNDI", [1]),
    _s("java.rmi.Naming", "lookup", "JNDI", [1]),
    _s("javax.management.remote.JMXConnectorFactory", "connect", "JNDI", [1]),
    _s("java.sql.DriverManager", "getConnection", "SQL", [1]),
    _s("javax.sql.DataSource", "getConnection", "SQL", [0]),
    _s("java.sql.Statement", "execute", "SQL", [1]),
    _s("javax.xml.parsers.SAXParser", "parse", "XXE", [1]),
    _s("org.xml.sax.XMLReader", "parse", "XXE", [1]),
    _s("java.net.URL", "openStream", "SSRF", [0]),
]

assert len(DEFAULT_SINKS) == 38, "paper's catalog has 38 sink methods"


class SinkCatalog:
    """Indexed lookup over sink methods."""

    def __init__(self, sinks: Optional[Iterable[SinkMethod]] = None):
        self._sinks: List[SinkMethod] = list(sinks if sinks is not None else DEFAULT_SINKS)
        self._by_key: Dict[Tuple[str, str], SinkMethod] = {
            (s.class_name, s.method_name): s for s in self._sinks
        }

    def __iter__(self):
        return iter(self._sinks)

    def __len__(self) -> int:
        return len(self._sinks)

    def lookup(self, class_name: str, method_name: str) -> Optional[SinkMethod]:
        """Exact match on (class, method)."""
        return self._by_key.get((class_name, method_name))

    def categories(self) -> List[str]:
        return sorted({s.category for s in self._sinks})

    def with_extra(self, extra: Iterable[SinkMethod]) -> "SinkCatalog":
        """A new catalog with user-defined sinks appended (the
        customisation workflow of §III-D)."""
        return SinkCatalog(self._sinks + list(extra))

    def of_category(self, category: str) -> List[SinkMethod]:
        return [s for s in self._sinks if s.category == category]

"""Parallel, shard-based controllability analysis.

Per-method controllability analysis (Algorithm 1) is independent across
methods once summaries are root-final (see the determinism contract in
:mod:`repro.core.controllability`), so the summary phase of a CPG build
shards cleanly across a ``ProcessPoolExecutor``:

1. classes are packed into ``workers * shards_per_worker`` shards with
   a deterministic greedy longest-processing-time heuristic (statement
   count as the cost proxy, names as tie-breakers);
2. each worker process holds one :class:`ClassHierarchy` over the *full*
   classpath (built once per process by the pool initialiser) and one
   memoising analysis instance shared across its shards;
3. workers return portable summary records (the codec of
   :mod:`repro.core.summary_cache`), which the parent decodes against
   its own hierarchy and merges in shard order.

Because every summary is a pure function of (method, hierarchy), the
merged result is bit-identical to the serial pipeline regardless of
worker count, shard layout, or scheduling — the differential harness in
``tests/core/test_parallel_equivalence.py`` asserts exactly that.

On platforms with ``fork`` (Linux), workers inherit the parent's parsed
classes copy-on-write and pay no serialisation cost; elsewhere the
classes are shipped once per worker as jasm text and re-parsed by the
pool initialiser.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.controllability import ControllabilityAnalysis
from repro.core.summary_cache import encode_summary
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass

__all__ = [
    "ParallelConfig",
    "ShardResult",
    "available_cpus",
    "plan_shards",
    "parallel_summary_records",
]


def available_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs for the worker pool."""

    workers: int = 0  # 0 = one per available CPU
    #: shards per worker; more shards = better load balance, more merges
    shards_per_worker: int = 4
    #: chunksize handed to executor.map — shards are already coarse, so
    #: 1 keeps the queue responsive to stragglers
    chunksize: int = 1
    #: "fork"/"spawn"/None (None picks fork when available)
    start_method: Optional[str] = None

    def resolved_workers(self) -> int:
        return self.workers if self.workers > 0 else available_cpus()

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class ShardResult:
    """What one worker task sends back to the parent."""

    records: List[Dict[str, object]]
    recursive_methods: List[str]
    cycle_tainted: List[str]


def _class_cost(cls: JavaClass) -> int:
    """Cost proxy for shard balancing: total body statements (+1 per
    method for fixed per-method overhead)."""
    return sum(len(m.body) + 1 for m in cls.methods.values())


def plan_shards(
    classes: Sequence[JavaClass], shard_count: int
) -> List[List[str]]:
    """Deterministic greedy LPT packing of class names into at most
    ``shard_count`` shards; empty shards are dropped."""
    shard_count = max(1, shard_count)
    ranked = sorted(classes, key=lambda c: (-_class_cost(c), c.name))
    loads = [0] * shard_count
    shards: List[List[str]] = [[] for _ in range(shard_count)]
    for cls in ranked:
        target = min(range(shard_count), key=lambda i: (loads[i], i))
        shards[target].append(cls.name)
        loads[target] += _class_cost(cls)
    return [shard for shard in shards if shard]


# ---------------------------------------------------------------------------
# Worker-side state
# ---------------------------------------------------------------------------

#: parent-side stash read by forked children (copy-on-write, zero pickling)
_FORK_CLASSES: Optional[List[JavaClass]] = None

#: per-worker-process singletons, set by the pool initialiser
_WORKER_ANALYSIS: Optional[ControllabilityAnalysis] = None


def _worker_init(jasm_text: Optional[str], max_recursion_depth: int) -> None:
    """Build the hierarchy and analysis once per worker process."""
    global _WORKER_ANALYSIS
    if jasm_text is None:
        classes = _FORK_CLASSES
        if classes is None:  # pragma: no cover - misconfigured pool
            raise RuntimeError("fork worker started without inherited classes")
    else:
        from repro.jvm import jasm

        classes = jasm.loads(jasm_text)
    hierarchy = ClassHierarchy(classes)
    _WORKER_ANALYSIS = ControllabilityAnalysis(
        hierarchy, max_recursion_depth=max_recursion_depth
    )


def _analyze_shard(class_names: Sequence[str]) -> ShardResult:
    """Analyse every body-carrying method of the shard's classes as a
    root, in canonical order, and encode the results."""
    analysis = _WORKER_ANALYSIS
    assert analysis is not None, "worker pool not initialised"
    methods = []
    for name in class_names:
        cls = analysis.hierarchy.get(name)
        if cls is None:  # pragma: no cover - shard planner uses defined names
            continue
        methods.extend(m for m in cls.methods.values() if m.has_body)
    records: List[Dict[str, object]] = []
    keys: Set[str] = set()
    for method in ControllabilityAnalysis.method_order(methods):
        summary = analysis.summary_for(method)
        records.append(encode_summary(summary))
        keys.add(method.signature.signature)
    return ShardResult(
        records=records,
        recursive_methods=sorted(analysis.recursive_methods & keys),
        cycle_tainted=sorted(analysis.cycle_tainted & keys),
    )


# ---------------------------------------------------------------------------
# Parent-side driver
# ---------------------------------------------------------------------------


def parallel_summary_records(
    classes: Sequence[JavaClass],
    target_class_names: Sequence[str],
    config: ParallelConfig,
    max_recursion_depth: int = 64,
) -> Tuple[List[Dict[str, object]], Set[str], Set[str]]:
    """Analyse the methods of ``target_class_names`` across a worker
    pool over the full ``classes`` classpath.

    Returns ``(records, recursive_methods, cycle_tainted)`` where
    ``records`` covers every body-carrying method of the target classes,
    merged in deterministic shard order.
    """
    global _FORK_CLASSES
    workers = config.resolved_workers()
    targets = [cls for cls in classes if cls.name in set(target_class_names)]
    shards = plan_shards(targets, workers * config.shards_per_worker)
    if not shards:
        return [], set(), set()
    start_method = config.resolved_start_method()
    ctx = multiprocessing.get_context(start_method)
    if start_method == "fork":
        initargs: Tuple[Optional[str], int] = (None, max_recursion_depth)
        _FORK_CLASSES = list(classes)
    else:
        from repro.jvm import jasm

        initargs = (jasm.dumps(classes), max_recursion_depth)
    records: List[Dict[str, object]] = []
    recursive: Set[str] = set()
    tainted: Set[str] = set()
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(shards)),
            mp_context=ctx,
            initializer=_worker_init,
            initargs=initargs,
        ) as pool:
            for result in pool.map(_analyze_shard, shards, chunksize=config.chunksize):
                records.extend(result.records)
                recursive.update(result.recursive_methods)
                tainted.update(result.cycle_tainted)
    finally:
        _FORK_CLASSES = None
    return records, recursive, tainted

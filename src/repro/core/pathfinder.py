"""Gadget-chain finding — Algorithms 2 and 3 (§III-D).

The finder starts at each **sink** method node and walks the CPG
*backwards* towards a **source**, carrying the sink's
Trigger_Condition as per-path state:

* across a ``CALL`` edge (traversed callee -> caller), the TC is pushed
  through the edge's Polluted_Position with Formula 4
  (``TC_next = {PP[x] | x in TC}``); if any required position maps to
  ``∞`` the edge is rejected — the Expander's exclusion (Figure 6
  drops E and I this way);
* across an ``ALIAS`` edge the TC passes unchanged (either direction:
  an override stands in for its declaration and vice versa);
* the Evaluator accepts a path whose end node is a source method and
  prunes paths that exceed the depth limit (Figure 6 drops G this
  way).

Accepted paths are reversed into :class:`GadgetChain` objects
(source -> ... -> sink).

The search runs on an optimized engine by default.  Three throughput
layers sit on top of the plain Expander/Evaluator enumeration, each
provably result-preserving (the differential harness in
``tests/core/test_search_equivalence.py`` asserts bit-identical chain
sets against the baseline engine):

* **source-reachability pruning** — a one-pass forward BFS from every
  source over CALL (caller->callee) and ALIAS (both directions) edges
  over-approximates, TC-agnostically, the set of nodes from which the
  backward search could ever reach a source.  The Expander refuses to
  step into any node outside the set.  Unreachability is closed under
  backward steps, so the refused subtrees contain no accepted path —
  including under ``NODE_GLOBAL``, where the skipped visited-marks
  could only ever have suppressed other unreachable visits;
* **negative state caching** — the DFS records ``(node, TC-set,
  remaining-depth)`` states whose expansion subtree was exhausted
  without finding a chain *and* without being clipped by a
  path-uniqueness check; such emptiness is prefix-independent, and a
  recorded budget dominates every smaller one, so dominated re-visits
  are skipped.  Only failures are cached — accepted paths are always
  enumerated exhaustively, so the chain set (and its enumeration
  order, hence ``max_results`` truncation) is unchanged by
  construction.  Disabled under ``NODE_GLOBAL``, whose global visited
  set makes subtree outcomes order-dependent;
* **per-sink parallelism** — sinks fan out across a process pool
  (:mod:`repro.core.search_parallel`), LPT-packed by CALL in-degree,
  and the per-sink chain lists are merged back in sink order, which is
  exactly the serial concatenation order, before deduplication.

``optimize=False`` restores the baseline engine (the generic
:func:`repro.graphdb.traversal.traverse` enumeration) bit-for-bit.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.chains import ChainStep, GadgetChain, dedupe_chains
from repro.core.cpg import ALIAS, CALL, CPG, RTA_DEAD
from repro.core.actions import traverse_tc
from repro.errors import PathFinderError
from repro.graphdb.graph import Node, PropertyGraph, Relationship
from repro.graphdb.traversal import Evaluation, Path, Uniqueness, traverse

__all__ = ["GadgetChainFinder", "SearchStatistics"]

#: recursion headroom guard: beyond this depth the optimized DFS falls
#: back to the iterative baseline engine (results are identical either
#: way; the negative cache simply does not apply)
_MAX_RECURSIVE_DEPTH = 400

#: counter fields accumulated across parallel search workers
_MERGE_COUNTERS = (
    "paths_visited",
    "call_edges_followed",
    "call_edges_rejected",
    "alias_hops",
    "depth_pruned",
    "filtered_sources",
    "reachability_pruned",
    "negative_cache_hits",
    "negative_cache_entries",
    "rta_pruned",
)


@dataclass
class SearchStatistics:
    """Diagnostics from the last :meth:`GadgetChainFinder.find_chains`.

    The expander/evaluator split mirrors the Figure 6 annotations: edges
    the Expander rejects carry an uncontrollable Polluted_Position for
    the required Trigger_Condition; paths the Evaluator prunes exceeded
    the depth limit.  The remaining counters instrument the optimized
    engine; they are diagnostics only — the chain set never depends on
    them.
    """

    sinks_searched: int = 0
    paths_visited: int = 0
    call_edges_followed: int = 0
    call_edges_rejected: int = 0  # Expander exclusions (E, I in Fig. 6)
    alias_hops: int = 0
    depth_pruned: int = 0  # Evaluator exclusions (G in Fig. 6)
    chains_found: int = 0
    #: source nodes reached but rejected by the accept filter
    #: (``source_filter`` / ``find_between``) — these no longer consume
    #: the ``max_results_per_sink`` budget
    filtered_sources: int = 0
    #: expansions refused because the target can never reach a source
    reachability_pruned: int = 0
    #: size of the source-reachability over-approximation (0 = pruning off)
    reachable_nodes: int = 0
    #: dominated re-visits skipped via recorded empty subtrees
    negative_cache_hits: int = 0
    #: (node, TC, remaining-depth) failure states recorded
    negative_cache_entries: int = 0
    #: expansions refused over RTA-dead dispatch edges (``skip_rta_dead``)
    rta_pruned: int = 0
    #: worker processes used for the per-sink fan-out (0 = serial)
    parallel_workers: int = 0
    #: wall-clock per search phase: reachability / search / dedupe
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: total wall-clock of the last find_chains() call
    search_seconds: float = 0.0

    def merge_counters(self, other: "SearchStatistics") -> None:
        """Accumulate a worker's per-shard counters into this object."""
        for name in _MERGE_COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def profile_lines(self) -> List[str]:
        """Human-readable per-phase/prune/cache report (``--profile``)."""
        lines = []
        for phase in ("reachability", "search", "dedupe"):
            if phase in self.phase_seconds:
                lines.append(
                    f"search phase {phase:<12} {self.phase_seconds[phase]:8.3f}s"
                )
        lines.append(
            f"search: {self.chains_found} chain(s) from {self.sinks_searched} "
            f"sink(s), {self.paths_visited} paths visited"
        )
        lines.append(
            f"pruning: {self.reachability_pruned} unreachable expansions "
            f"refused ({self.reachable_nodes} source-reachable nodes), "
            f"{self.depth_pruned} depth-pruned, {self.rta_pruned} RTA-pruned"
        )
        lines.append(
            f"negative cache: {self.negative_cache_hits} hits, "
            f"{self.negative_cache_entries} states recorded"
        )
        lines.append(
            "search workers: "
            + (str(self.parallel_workers) if self.parallel_workers else "serial")
        )
        lines.append(f"total search: {self.search_seconds:.3f}s")
        return lines


#: a picklable accept-filter description: ``None`` (accept everything),
#: ``("prefix", class_name_prefix)`` for ``source_filter``, or
#: ``("exact", class_name, method_name)`` for ``find_between``
AcceptSpec = Optional[Tuple[str, ...]]


def _make_accept(spec: AcceptSpec) -> Optional[Callable[[Node], bool]]:
    if spec is None:
        return None
    kind = spec[0]
    if kind == "prefix":
        prefix = spec[1]
        return lambda node: str(node.get("CLASSNAME", "?")).startswith(prefix)
    if kind == "exact":
        class_name, method_name = spec[1], spec[2]
        return (
            lambda node: node.get("CLASSNAME") == class_name
            and node.get("NAME") == method_name
        )
    raise PathFinderError(f"unknown accept spec kind: {kind!r}")


class GadgetChainFinder:
    """Configurable backward search for gadget chains over a CPG."""

    def __init__(
        self,
        cpg: CPG,
        max_depth: int = 12,
        max_results_per_sink: Optional[int] = 200,
        follow_alias: bool = True,
        uniqueness: Uniqueness = Uniqueness.RELATIONSHIP_PATH,
        optimize: bool = True,
        prune_unreachable: Optional[bool] = None,
        negative_cache: Optional[bool] = None,
        workers: int = 1,
        skip_rta_dead: bool = False,
    ):
        if max_depth < 1:
            raise PathFinderError("max_depth must be >= 1")
        self.cpg = cpg
        self.max_depth = max_depth
        self.max_results_per_sink = max_results_per_sink
        #: ablation hook: without alias edges polymorphic chains vanish
        self.follow_alias = follow_alias
        self.uniqueness = uniqueness
        #: master switch for the optimized engine; ``False`` restores the
        #: pre-optimization baseline (generic traverse, no pruning)
        self.optimize = optimize
        #: individual layer toggles; ``None`` follows :attr:`optimize`
        self.prune_unreachable = optimize if prune_unreachable is None else prune_unreachable
        self.negative_cache = optimize if negative_cache is None else negative_cache
        #: per-sink fan-out: 1 = in-process serial, 0 = one worker per
        #: CPU, N>1 = N worker processes; results are identical to serial
        self.workers = workers
        #: skip CALL/ALIAS edges carrying the ``RTA_DEAD`` annotation
        #: written by :func:`repro.analysis.rta.annotate_type_reachability`
        #: (no-op on an unannotated CPG); differential-tested equivalent
        #: to post-hoc RTA-only chain refutation
        self.skip_rta_dead = skip_rta_dead
        #: diagnostics from the most recent find_chains() run
        self.last_search_stats = SearchStatistics()
        self._accept: Optional[Callable[[Node], bool]] = None
        self._reachable: Optional[Set[int]] = None

    # -- Algorithm 2: Expander -------------------------------------------

    def _expander(
        self, graph: PropertyGraph, path: Path, tc: List[int]
    ) -> Iterator[Tuple[Relationship, Node, List[int]]]:
        node = path.end_node
        stats = self.last_search_stats
        reachable = self._reachable
        # incoming CALL edges: move from callee to caller, pushing the TC
        # through the edge's Polluted_Position (Formula 4)
        for rel in graph.in_relationships(node, CALL):
            if self.skip_rta_dead and rel.get(RTA_DEAD):
                stats.rta_pruned += 1
                continue
            pp = rel.get("POLLUTED_POSITION")
            if pp is None:
                continue
            tc_next = traverse_tc(tc, pp)
            if tc_next is None:
                stats.call_edges_rejected += 1
                continue  # ∃x ∈ TC_next, x = ∞ -> reject (Algorithm 2)
            if reachable is not None and rel.start_id not in reachable:
                stats.reachability_pruned += 1
                continue
            stats.call_edges_followed += 1
            yield rel, graph.node(rel.start_id), tc_next
        if not self.follow_alias:
            return
        # ALIAS edges pass the TC unchanged, in both directions (the
        # real tabby-path-finder matches ALIAS undirected).  Two ALIAS
        # hops in a row are meaningless — a dispatch bridges one
        # declaration/override pair — so they are not expanded; this is
        # what keeps Alias neighbours that never reach the sink (the
        # EnumMap.hashCode -> entryHashCode situation of §III-B2) out of
        # the results.
        last = path.last_relationship
        if last is not None and last.type == ALIAS:
            return
        for rel in graph.out_relationships(node, ALIAS):
            if self.skip_rta_dead and rel.get(RTA_DEAD):
                stats.rta_pruned += 1
                continue
            if reachable is not None and rel.end_id not in reachable:
                stats.reachability_pruned += 1
                continue
            stats.alias_hops += 1
            yield rel, graph.node(rel.end_id), list(tc)
        for rel in graph.in_relationships(node, ALIAS):
            if self.skip_rta_dead and rel.get(RTA_DEAD):
                stats.rta_pruned += 1
                continue
            if reachable is not None and rel.start_id not in reachable:
                stats.reachability_pruned += 1
                continue
            stats.alias_hops += 1
            yield rel, graph.node(rel.start_id), list(tc)

    # -- Algorithm 3: Evaluator --------------------------------------------

    def _evaluator(self, graph: PropertyGraph, path: Path, tc: List[int]) -> Evaluation:
        stats = self.last_search_stats
        stats.paths_visited += 1
        end = path.end_node
        if path.length > 0 and end.get("IS_SOURCE"):
            accept = self._accept
            if accept is None or accept(end):
                # gadget chain found; keep expanding — a deeper entry
                # point (e.g. HashMap.readObject above URL.hashCode in
                # URLDNS) may yield another chain through this one
                if path.length < self.max_depth:
                    return Evaluation.INCLUDE_AND_CONTINUE
                return Evaluation.INCLUDE_AND_PRUNE
            # an unwanted source: exclude *here*, so it does not consume
            # the max_results budget, but keep searching deeper — a
            # wanted source may still sit above it
            stats.filtered_sources += 1
        if path.length < self.max_depth:
            return Evaluation.EXCLUDE_AND_CONTINUE
        stats.depth_pruned += 1
        return Evaluation.EXCLUDE_AND_PRUNE

    # -- source-reachability precomputation ---------------------------------

    def _compute_source_reachable(self, graph: PropertyGraph) -> Set[int]:
        """Nodes from which the *backward* search can still reach a
        source, over-approximated TC-agnostically.

        A backward step goes callee -> caller over an incoming CALL edge
        (or across ALIAS either way), so its reversal follows CALL edges
        forward; a BFS from every source along caller->callee CALL edges
        plus undirected ALIAS edges therefore covers every node with
        *any* step sequence to a source, ignoring PP rejections, depth,
        and the consecutive-ALIAS rule.  Complement membership is
        closed under backward steps, which makes refusing those
        expansions sound for every Uniqueness mode.
        """
        seen: Set[int] = set()
        queue: deque = deque()
        for node in self.cpg.source_nodes():
            if node.id not in seen:
                seen.add(node.id)
                queue.append(node.id)
        follow_alias = self.follow_alias
        csr = getattr(graph, "csr_neighbors", None)
        if csr is not None:
            # array-backed snapshot view (ArrayGraph): identical BFS over
            # the typed CSR neighbour arrays — same visited set, but no
            # Relationship objects allocated along the sweep
            hops = [csr(CALL, False)]
            if follow_alias:
                hops.append(csr(ALIAS, False))
                hops.append(csr(ALIAS, True))
            while queue:
                node_id = queue.popleft()
                for indptr, neighbours in hops:
                    for nbr in neighbours[indptr[node_id] : indptr[node_id + 1]]:
                        if nbr not in seen:
                            seen.add(nbr)
                            queue.append(nbr)
            return seen
        while queue:
            node_id = queue.popleft()
            for rel in graph.out_relationships(node_id, CALL):
                if rel.end_id not in seen:
                    seen.add(rel.end_id)
                    queue.append(rel.end_id)
            if not follow_alias:
                continue
            for rel in graph.out_relationships(node_id, ALIAS):
                if rel.end_id not in seen:
                    seen.add(rel.end_id)
                    queue.append(rel.end_id)
            for rel in graph.in_relationships(node_id, ALIAS):
                if rel.start_id not in seen:
                    seen.add(rel.start_id)
                    queue.append(rel.start_id)
        return seen

    # -- the optimized DFS engine -------------------------------------------

    def _use_dfs_engine(self) -> bool:
        return self.optimize and self.max_depth <= _MAX_RECURSIVE_DEPTH

    def _search_sink(
        self, graph: PropertyGraph, sink: Node, tc0: List[int]
    ) -> List[Tuple[Path, List[int]]]:
        """Preorder DFS identical to :func:`traverse` over this finder's
        expander/evaluator, plus sound negative state caching.

        A state ``(node, TC-set, remaining-depth)`` is recorded as a
        proven failure only when its expansion subtree was explored to
        exhaustion (never clipped by a path-uniqueness check, never cut
        short by ``max_results``) and contained no accepted path.  Such
        emptiness holds under *any* path prefix — a prefix can only
        remove branches — and for any remaining budget ≤ the recorded
        one, so dominated re-visits are skipped without losing a single
        chain.  The TC key is the position *set*: Formula 4 acceptance
        and the downstream TC depend only on set membership.
        """
        max_results = self.max_results_per_sink
        uniqueness = self.uniqueness
        use_cache = self.negative_cache and uniqueness is not Uniqueness.NODE_GLOBAL
        negcache: Dict[Tuple[int, frozenset], int] = {}
        visited_global: Set[int] = set()
        results: List[Tuple[Path, List[int]]] = []
        stats = self.last_search_stats
        stop = False

        def visit(path: Path, tc: List[int]) -> Tuple[bool, bool]:
            """Returns ``(found_any, complete)`` — whether the subtree
            contained an accepted path, and whether it was explored
            exhaustively (a prerequisite for caching its emptiness)."""
            nonlocal stop
            end = path.end_node
            if uniqueness is Uniqueness.NODE_GLOBAL:
                if end.id in visited_global and path.length > 0:
                    return False, False
                visited_global.add(end.id)
            verdict = self._evaluator(graph, path, tc)
            found = False
            if verdict.includes:
                results.append((path, tc))
                found = True
                if max_results is not None and len(results) >= max_results:
                    stop = True
                    return True, False
            if not verdict.continues:
                # the evaluator's cut depends only on (node, depth, TC):
                # prefix-independent, so the subtree counts as complete
                return found, True
            key = (end.id, frozenset(tc)) if use_cache else None
            remaining = self.max_depth - path.length
            if key is not None:
                proven_budget = negcache.get(key)
                if proven_budget is not None and proven_budget >= remaining:
                    stats.negative_cache_hits += 1
                    return found, True
            complete = True
            for rel, node, next_tc in self._expander(graph, path, tc):
                if uniqueness is Uniqueness.NODE_PATH and path.contains_node(node):
                    complete = False
                    continue
                if uniqueness is Uniqueness.RELATIONSHIP_PATH and path.contains_relationship(rel):
                    complete = False
                    continue
                child_found, child_complete = visit(path.extend(rel, node), next_tc)
                found = found or child_found
                complete = complete and child_complete
                if stop:
                    return found, False
            if key is not None and complete and not found:
                negcache[key] = remaining
                stats.negative_cache_entries += 1
            return found, complete

        visit(Path.single(sink), list(tc0))
        return results

    # -- public API -----------------------------------------------------------

    def find_chains(
        self,
        sink_nodes: Optional[Sequence[Node]] = None,
        source_filter: Optional[str] = None,
    ) -> List[GadgetChain]:
        """Search every sink (or the given sink nodes) and return
        deduplicated gadget chains.

        ``source_filter`` restricts accepted chains to sources whose
        class name starts with the prefix (the per-component workflow of
        §IV-C).  The filter is applied *inside* the Evaluator, so
        filtered-out chains never consume the ``max_results_per_sink``
        budget.
        """
        spec: AcceptSpec = ("prefix", source_filter) if source_filter else None
        return self._find(sink_nodes, spec)

    def find_between(
        self, source_node: Node, sink_node: Node
    ) -> List[GadgetChain]:
        """Chains between one specific source and sink (the custom-query
        workflow: "check for the existence of a gadget chain between any
        source and sink", §III-D).  The source restriction runs inside
        the Evaluator — no unrestricted search plus post-filter."""
        spec: AcceptSpec = (
            "exact",
            source_node.get("CLASSNAME"),
            source_node.get("NAME"),
        )
        return self._find([sink_node], spec)

    # -- orchestration ------------------------------------------------------

    def _resolved_workers(self) -> int:
        if self.workers == 1:
            return 1
        from repro.core.parallel import available_cpus

        return self.workers if self.workers > 0 else available_cpus()

    def _find(
        self, sink_nodes: Optional[Sequence[Node]], accept_spec: AcceptSpec
    ) -> List[GadgetChain]:
        started = time.perf_counter()
        sinks = list(sink_nodes) if sink_nodes is not None else self.cpg.sink_nodes()
        stats = self.last_search_stats = SearchStatistics(sinks_searched=len(sinks))
        per_sink = self._per_sink_chains(sinks, accept_spec, stats)
        chains: List[GadgetChain] = [c for bucket in per_sink for c in bucket]
        t0 = time.perf_counter()
        deduped = dedupe_chains(chains)
        stats.phase_seconds["dedupe"] = time.perf_counter() - t0
        stats.chains_found = len(deduped)
        stats.search_seconds = time.perf_counter() - started
        return deduped

    def find_chains_per_sink(
        self,
        sink_nodes: Sequence[Node],
        source_filter: Optional[str] = None,
    ) -> List[List[GadgetChain]]:
        """Raw per-sink chain lists (pre-dedupe), one per given sink, in
        the given sink order.

        This is the splice surface of the incremental re-search
        (:mod:`repro.core.incremental`): each sink's enumeration depends
        only on its own backward cone, so a caller may re-search a
        subset of sinks and concatenate stored lists for the rest —
        deduplicating the concatenation in full sink order reproduces
        :meth:`find_chains` exactly.
        """
        spec: AcceptSpec = ("prefix", source_filter) if source_filter else None
        started = time.perf_counter()
        sinks = list(sink_nodes)
        stats = self.last_search_stats = SearchStatistics(sinks_searched=len(sinks))
        per_sink = self._per_sink_chains(sinks, spec, stats)
        stats.chains_found = sum(len(bucket) for bucket in per_sink)
        stats.search_seconds = time.perf_counter() - started
        return per_sink

    def _per_sink_chains(
        self,
        sinks: List[Node],
        accept_spec: AcceptSpec,
        stats: SearchStatistics,
    ) -> List[List[GadgetChain]]:
        """Reachability precomputation plus the per-sink fan-out; the
        chain lists come back in sink order, pre-dedupe."""
        graph = self.cpg.graph
        self._accept = _make_accept(accept_spec)
        self._reachable = None
        if self.prune_unreachable:
            t0 = time.perf_counter()
            self._reachable = self._compute_source_reachable(graph)
            stats.reachable_nodes = len(self._reachable)
            stats.phase_seconds["reachability"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        workers = self._resolved_workers()
        if workers > 1 and len(sinks) > 1:
            from repro.core.search_parallel import parallel_find_chains

            stats.parallel_workers = workers
            per_sink, worker_stats = parallel_find_chains(
                self, sinks, accept_spec, workers
            )
            for shard_stats in worker_stats:
                stats.merge_counters(shard_stats)
        else:
            per_sink = [self._chains_for_sink(graph, sink) for sink in sinks]
        stats.phase_seconds["search"] = time.perf_counter() - t0
        return per_sink

    def _chains_for_sink(self, graph: PropertyGraph, sink: Node) -> List[GadgetChain]:
        """All accepted chains of one sink, in enumeration order."""
        tc = list(sink.get("TRIGGER_CONDITION") or [0])
        if self._use_dfs_engine():
            found: Any = self._search_sink(graph, sink, tc)
        else:
            found = traverse(
                graph,
                sink,
                self._expander,
                self._evaluator,
                initial_state=tc,
                uniqueness=self.uniqueness,
                max_results=self.max_results_per_sink,
            )
        return [self._path_to_chain(path, sink) for path, _state in found]

    # -- helpers ------------------------------------------------------------------

    def _path_to_chain(self, path: Path, sink: Node) -> GadgetChain:
        """Reverse a backward path (sink ... source) into a chain."""
        nodes = list(reversed(path.nodes))
        rels = list(reversed(path.relationships))
        steps: List[ChainStep] = []
        for i, node in enumerate(nodes):
            edge = rels[i].type if i < len(rels) else ""
            steps.append(
                ChainStep(
                    class_name=node.get("CLASSNAME", "?"),
                    method_name=node.get("NAME", "?"),
                    arity=node.get("ARITY", 0),
                    edge_to_next=edge,
                )
            )
        return GadgetChain(
            steps,
            sink_category=sink.get("SINK_TYPE", ""),
            trigger_condition=sink.get("TRIGGER_CONDITION") or [],
        )

"""Gadget-chain finding — Algorithms 2 and 3 (§III-D).

The finder starts at each **sink** method node and walks the CPG
*backwards* towards a **source**, carrying the sink's
Trigger_Condition as per-path state:

* across a ``CALL`` edge (traversed callee -> caller), the TC is pushed
  through the edge's Polluted_Position with Formula 4
  (``TC_next = {PP[x] | x in TC}``); if any required position maps to
  ``∞`` the edge is rejected — the Expander's exclusion (Figure 6
  drops E and I this way);
* across an ``ALIAS`` edge the TC passes unchanged (either direction:
  an override stands in for its declaration and vice versa);
* the Evaluator accepts a path whose end node is a source method and
  prunes paths that exceed the depth limit (Figure 6 drops G this
  way).

Accepted paths are reversed into :class:`GadgetChain` objects
(source -> ... -> sink).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.chains import ChainStep, GadgetChain, dedupe_chains
from repro.core.cpg import ALIAS, CALL, CPG
from repro.core.actions import traverse_tc
from repro.errors import PathFinderError
from repro.graphdb.graph import Node, PropertyGraph, Relationship
from repro.graphdb.traversal import Evaluation, Path, Uniqueness, traverse

__all__ = ["GadgetChainFinder", "SearchStatistics"]


@dataclass
class SearchStatistics:
    """Diagnostics from the last :meth:`GadgetChainFinder.find_chains`.

    The expander/evaluator split mirrors the Figure 6 annotations: edges
    the Expander rejects carry an uncontrollable Polluted_Position for
    the required Trigger_Condition; paths the Evaluator prunes exceeded
    the depth limit.
    """

    sinks_searched: int = 0
    paths_visited: int = 0
    call_edges_followed: int = 0
    call_edges_rejected: int = 0  # Expander exclusions (E, I in Fig. 6)
    alias_hops: int = 0
    depth_pruned: int = 0  # Evaluator exclusions (G in Fig. 6)
    chains_found: int = 0


class GadgetChainFinder:
    """Configurable backward search for gadget chains over a CPG."""

    def __init__(
        self,
        cpg: CPG,
        max_depth: int = 12,
        max_results_per_sink: Optional[int] = 200,
        follow_alias: bool = True,
        uniqueness: Uniqueness = Uniqueness.RELATIONSHIP_PATH,
    ):
        if max_depth < 1:
            raise PathFinderError("max_depth must be >= 1")
        self.cpg = cpg
        self.max_depth = max_depth
        self.max_results_per_sink = max_results_per_sink
        #: ablation hook: without alias edges polymorphic chains vanish
        self.follow_alias = follow_alias
        self.uniqueness = uniqueness
        #: diagnostics from the most recent find_chains() run
        self.last_search_stats = SearchStatistics()

    # -- Algorithm 2: Expander -------------------------------------------

    def _expander(
        self, graph: PropertyGraph, path: Path, tc: List[int]
    ) -> Iterator[Tuple[Relationship, Node, List[int]]]:
        node = path.end_node
        stats = self.last_search_stats
        # incoming CALL edges: move from callee to caller, pushing the TC
        # through the edge's Polluted_Position (Formula 4)
        for rel in graph.in_relationships(node, CALL):
            pp = rel.get("POLLUTED_POSITION")
            if pp is None:
                continue
            tc_next = traverse_tc(tc, pp)
            if tc_next is None:
                stats.call_edges_rejected += 1
                continue  # ∃x ∈ TC_next, x = ∞ -> reject (Algorithm 2)
            stats.call_edges_followed += 1
            yield rel, graph.node(rel.start_id), tc_next
        if not self.follow_alias:
            return
        # ALIAS edges pass the TC unchanged, in both directions (the
        # real tabby-path-finder matches ALIAS undirected).  Two ALIAS
        # hops in a row are meaningless — a dispatch bridges one
        # declaration/override pair — so they are not expanded; this is
        # what keeps Alias neighbours that never reach the sink (the
        # EnumMap.hashCode -> entryHashCode situation of §III-B2) out of
        # the results.
        last = path.last_relationship
        if last is not None and last.type == ALIAS:
            return
        for rel in graph.out_relationships(node, ALIAS):
            stats.alias_hops += 1
            yield rel, graph.node(rel.end_id), list(tc)
        for rel in graph.in_relationships(node, ALIAS):
            stats.alias_hops += 1
            yield rel, graph.node(rel.start_id), list(tc)

    # -- Algorithm 3: Evaluator --------------------------------------------

    def _evaluator(self, graph: PropertyGraph, path: Path, tc: List[int]) -> Evaluation:
        stats = self.last_search_stats
        stats.paths_visited += 1
        end = path.end_node
        if path.length > 0 and end.get("IS_SOURCE"):
            # gadget chain found; keep expanding — a deeper entry point
            # (e.g. HashMap.readObject above URL.hashCode in URLDNS) may
            # yield another chain through this one
            if path.length < self.max_depth:
                return Evaluation.INCLUDE_AND_CONTINUE
            return Evaluation.INCLUDE_AND_PRUNE
        if path.length < self.max_depth:
            return Evaluation.EXCLUDE_AND_CONTINUE
        stats.depth_pruned += 1
        return Evaluation.EXCLUDE_AND_PRUNE

    # -- public API -----------------------------------------------------------

    def find_chains(
        self,
        sink_nodes: Optional[Sequence[Node]] = None,
        source_filter: Optional[str] = None,
    ) -> List[GadgetChain]:
        """Search every sink (or the given sink nodes) and return
        deduplicated gadget chains.

        ``source_filter`` restricts accepted chains to sources whose
        class name starts with the prefix (the per-component workflow of
        §IV-C).
        """
        graph = self.cpg.graph
        sinks = list(sink_nodes) if sink_nodes is not None else self.cpg.sink_nodes()
        self.last_search_stats = SearchStatistics(sinks_searched=len(sinks))
        chains: List[GadgetChain] = []
        for sink in sinks:
            tc = list(sink.get("TRIGGER_CONDITION") or [0])
            found = traverse(
                graph,
                sink,
                self._expander,
                self._evaluator,
                initial_state=tc,
                uniqueness=self.uniqueness,
                max_results=self.max_results_per_sink,
            )
            for path, _state in found:
                chain = self._path_to_chain(path, sink)
                if source_filter and not chain.source.class_name.startswith(
                    source_filter
                ):
                    continue
                chains.append(chain)
        deduped = dedupe_chains(chains)
        self.last_search_stats.chains_found = len(deduped)
        return deduped

    def find_between(
        self, source_node: Node, sink_node: Node
    ) -> List[GadgetChain]:
        """Chains between one specific source and sink (the custom-query
        workflow: "check for the existence of a gadget chain between any
        source and sink", §III-D)."""
        chains = self.find_chains(sink_nodes=[sink_node])
        wanted = (source_node.get("CLASSNAME"), source_node.get("NAME"))
        return [
            c
            for c in chains
            if (c.source.class_name, c.source.method_name) == wanted
        ]

    # -- helpers ------------------------------------------------------------------

    def _path_to_chain(self, path: Path, sink: Node) -> GadgetChain:
        """Reverse a backward path (sink ... source) into a chain."""
        nodes = list(reversed(path.nodes))
        rels = list(reversed(path.relationships))
        steps: List[ChainStep] = []
        for i, node in enumerate(nodes):
            edge = rels[i].type if i < len(rels) else ""
            steps.append(
                ChainStep(
                    class_name=node.get("CLASSNAME", "?"),
                    method_name=node.get("NAME", "?"),
                    arity=node.get("ARITY", 0),
                    edge_to_next=edge,
                )
            )
        return GadgetChain(
            steps,
            sink_category=sink.get("SINK_TYPE", ""),
            trigger_condition=sink.get("TRIGGER_CONDITION") or [],
        )

"""Opt-in guard-feasibility refinement of gadget chains.

Tabby's dominant false-positive class (~33%, paper §IV-E) is the chain
that is structurally sound but dynamically dead: a hop sits behind a
guard like ``if (Config.ENABLED) fire()`` where the guard can never
pass.  The :mod:`repro.jvm.dataflow` constant-propagation analysis can
refute exactly the statically-decidable subset of these: guards that
compare only constants — including loads of static fields provably
stuck at their default value (never stored anywhere in the analyzed
program, no ``<clinit>``).

:class:`GuardFeasibilityRefiner` post-filters a chain list.  A chain is
*refuted* only under a deliberately conservative rule:

* for a hop ``A --CALL--> B``, find the call sites in A's body whose
  callee name and arity match B;
* if at least one matching site exists and **every** one lies in a
  block that conditional constant propagation proves infeasible, the
  hop (and the chain) is dead;
* ALIAS hops, hops whose caller has no body, and hops with no matching
  site are never refuted.

True chains pass a payload through attacker-controlled *instance*
fields, which the analysis treats as non-constant, so their guards stay
feasible — the refinement can only remove chains whose guards compare
constants (zero false-negative cost on the shipped corpus, asserted by
tests).  This is an **extension beyond the paper**: it is off by
default everywhere (``--refine-guards`` on the CLI,
``refine_guards=`` in :meth:`repro.core.api.Tabby.find_gadget_chains`)
so Table IX output stays bit-identical to the paper pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.chains import GadgetChain
from repro.jvm import dataflow as df
from repro.jvm import ir
from repro.jvm.cfg import ControlFlowGraph, build_cfg
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaMethod

__all__ = ["GuardFeasibilityRefiner", "RefutationReason", "refine_chains"]


@dataclass(frozen=True)
class RefutationReason:
    """Why a chain was refuted — explainable verdicts, not bare booleans.

    ``kind`` names the refuting analysis (``constant-guard`` here;
    ``rta-dead-dispatch`` / ``untainted-sink`` from
    :mod:`repro.analysis.chain_refiner`), ``step_index`` is the 0-based
    position of the hop's caller inside ``chain.steps``, and ``detail``
    is a human-readable account (guard location + folded constant for
    guard refutations)."""

    kind: str
    step_index: int
    caller: str
    callee: str
    detail: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "step_index": self.step_index,
            "caller": self.caller,
            "callee": self.callee,
            "detail": self.detail,
        }


class GuardFeasibilityRefiner:
    """Refutes chains whose connecting call sites are statically dead."""

    def __init__(self, hierarchy: ClassHierarchy):
        self.hierarchy = hierarchy
        self.static_oracle = df.constant_static_fields(hierarchy.classes)
        # method id -> analysis artifacts; memoised per method since
        # many chains share prefixes.
        self._feasible_cache: Dict[int, FrozenSet[int]] = {}
        self._site_cache: Dict[int, List[Tuple[int, ir.InvokeExpr]]] = {}
        self._verdict_cache: Dict[int, Dict[int, str]] = {}
        self._cfg_cache: Dict[int, ControlFlowGraph] = {}
        self._def_cache: Dict[int, Dict[str, ir.Value]] = {}

    # -- per-method analysis -------------------------------------------------

    def _analyze(self, method: JavaMethod) -> None:
        if id(method) in self._feasible_cache:
            return
        cfg = build_cfg(method)
        analysis = df.ConstantPropagation(static_oracle=self.static_oracle)
        result = df.run_analysis(cfg, analysis)
        self._feasible_cache[id(method)] = result.reached
        self._verdict_cache[id(method)] = dict(analysis.branch_verdicts)
        self._cfg_cache[id(method)] = cfg
        sites: List[Tuple[int, ir.InvokeExpr]] = []
        for block in cfg.blocks:
            for stmt in block.statements:
                invoke = stmt.invoke_expr()
                if invoke is not None:
                    sites.append((block.index, invoke))
        self._site_cache[id(method)] = sites

    def _temp_defs(self, caller: JavaMethod) -> Dict[str, ir.Value]:
        """Locals assigned exactly once in ``caller`` -> their rhs, so a
        3-addr temp like ``$cmp2`` can be displayed as the comparison it
        names rather than as an opaque variable."""
        cached = self._def_cache.get(id(caller))
        if cached is not None:
            return cached
        counts: Dict[str, int] = {}
        rhs_by_name: Dict[str, ir.Value] = {}
        for block in self._cfg_cache[id(caller)].blocks:
            for stmt in block.statements:
                if isinstance(stmt, ir.AssignStmt) and isinstance(
                    stmt.target, ir.Local
                ):
                    counts[stmt.target.name] = counts.get(stmt.target.name, 0) + 1
                    rhs_by_name[stmt.target.name] = stmt.rhs
        defs = {name: rhs for name, rhs in rhs_by_name.items() if counts[name] == 1}
        self._def_cache[id(caller)] = defs
        return defs

    def _render_value(
        self, value: ir.Value, defs: Dict[str, ir.Value], depth: int = 4
    ) -> str:
        if depth > 0 and isinstance(value, ir.Local) and value.name in defs:
            return self._render_value(defs[value.name], defs, depth - 1)
        if depth > 0 and isinstance(value, ir.BinOpExpr):
            left = self._render_value(value.left, defs, depth - 1)
            right = self._render_value(value.right, defs, depth - 1)
            return f"{left} {value.op} {right}"
        return str(value)

    def _render_guard(self, caller: JavaMethod) -> str:
        """Describe the folded guard(s) that killed blocks in ``caller``:
        the guard condition (temps resolved to the field/constant they
        load), its source line, and the decided verdict."""
        cfg = self._cfg_cache[id(caller)]
        defs = self._temp_defs(caller)
        parts: List[str] = []
        for block_index in sorted(self._verdict_cache[id(caller)]):
            verdict = self._verdict_cache[id(caller)][block_index]
            guard = cfg.blocks[block_index].last
            where = f" (line {guard.line})" if guard.line else ""
            if isinstance(guard, ir.IfStmt):
                cond = self._render_value(guard.cond, defs)
                parts.append(f"'if {cond}'{where} is {verdict}")
            else:
                parts.append(f"guard in block {block_index}{where} is {verdict}")
        return "; ".join(parts) if parts else "block is CFG-unreachable"

    def _hop_refutation(
        self, caller: JavaMethod, callee_name: str, callee_arity: int
    ) -> Optional[str]:
        """Detail string iff every matching call site in ``caller`` is
        infeasible; ``None`` keeps the hop (conservative default)."""
        self._analyze(caller)
        feasible = self._feasible_cache[id(caller)]
        matching = [
            block_index
            for block_index, invoke in self._site_cache[id(caller)]
            if invoke.method_name == callee_name and invoke.arity == callee_arity
        ]
        if not matching:
            return None  # conservative: cannot see the hop, keep it
        if any(block_index in feasible for block_index in matching):
            return None
        sites = "site" if len(matching) == 1 else "sites"
        return (
            f"all {len(matching)} matching call {sites} "
            f"(block {', '.join(str(b) for b in sorted(set(matching)))}) are "
            f"statically infeasible: {self._render_guard(caller)}"
        )

    def _hop_is_dead(
        self, caller: JavaMethod, callee_name: str, callee_arity: int
    ) -> bool:
        """True iff every matching call site in ``caller`` is infeasible."""
        return self._hop_refutation(caller, callee_name, callee_arity) is not None

    # -- chain refinement -----------------------------------------------------

    def chain_refutation(self, chain: GadgetChain) -> Optional[RefutationReason]:
        """The reason some CALL hop of ``chain`` is provably dead, if any."""
        for step_index, (step, next_step) in enumerate(
            zip(chain.steps, chain.steps[1:])
        ):
            if step.edge_to_next != "CALL":
                continue  # ALIAS hops have no call site to judge
            caller_cls = self.hierarchy.get(step.class_name)
            if caller_cls is None:
                continue
            caller = caller_cls.find_method(step.method_name, step.arity)
            if caller is None or not caller.has_body:
                continue
            detail = self._hop_refutation(
                caller, next_step.method_name, next_step.arity
            )
            if detail is not None:
                return RefutationReason(
                    kind="constant-guard",
                    step_index=step_index,
                    caller=step.qualified,
                    callee=next_step.qualified,
                    detail=detail,
                )
        return None

    def chain_is_refuted(self, chain: GadgetChain) -> bool:
        """True iff some CALL hop of ``chain`` is provably dead."""
        return self.chain_refutation(chain) is not None

    def refine_with_reasons(
        self, chains: Sequence[GadgetChain]
    ) -> Tuple[List[GadgetChain], List[Tuple[GadgetChain, RefutationReason]]]:
        """Partition into (kept, [(refuted, reason), ...]), preserving order."""
        kept: List[GadgetChain] = []
        refuted: List[Tuple[GadgetChain, RefutationReason]] = []
        for chain in chains:
            reason = self.chain_refutation(chain)
            if reason is None:
                kept.append(chain)
            else:
                refuted.append((chain, reason))
        return kept, refuted

    def refine(
        self, chains: Sequence[GadgetChain]
    ) -> Tuple[List[GadgetChain], List[GadgetChain]]:
        """Partition ``chains`` into (kept, refuted), preserving order."""
        kept, refuted = self.refine_with_reasons(chains)
        return kept, [chain for chain, _reason in refuted]


def refine_chains(
    chains: Sequence[GadgetChain], hierarchy: ClassHierarchy
) -> Tuple[List[GadgetChain], List[GadgetChain]]:
    """Convenience wrapper: one-shot (kept, refuted) partition."""
    return GuardFeasibilityRefiner(hierarchy).refine(chains)

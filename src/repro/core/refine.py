"""Opt-in guard-feasibility refinement of gadget chains.

Tabby's dominant false-positive class (~33%, paper §IV-E) is the chain
that is structurally sound but dynamically dead: a hop sits behind a
guard like ``if (Config.ENABLED) fire()`` where the guard can never
pass.  The :mod:`repro.jvm.dataflow` constant-propagation analysis can
refute exactly the statically-decidable subset of these: guards that
compare only constants — including loads of static fields provably
stuck at their default value (never stored anywhere in the analyzed
program, no ``<clinit>``).

:class:`GuardFeasibilityRefiner` post-filters a chain list.  A chain is
*refuted* only under a deliberately conservative rule:

* for a hop ``A --CALL--> B``, find the call sites in A's body whose
  callee name and arity match B;
* if at least one matching site exists and **every** one lies in a
  block that conditional constant propagation proves infeasible, the
  hop (and the chain) is dead;
* ALIAS hops, hops whose caller has no body, and hops with no matching
  site are never refuted.

True chains pass a payload through attacker-controlled *instance*
fields, which the analysis treats as non-constant, so their guards stay
feasible — the refinement can only remove chains whose guards compare
constants (zero false-negative cost on the shipped corpus, asserted by
tests).  This is an **extension beyond the paper**: it is off by
default everywhere (``--refine-guards`` on the CLI,
``refine_guards=`` in :meth:`repro.core.api.Tabby.find_gadget_chains`)
so Table IX output stays bit-identical to the paper pipeline.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.chains import GadgetChain
from repro.jvm import dataflow as df
from repro.jvm import ir
from repro.jvm.cfg import build_cfg
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaMethod

__all__ = ["GuardFeasibilityRefiner", "refine_chains"]


class GuardFeasibilityRefiner:
    """Refutes chains whose connecting call sites are statically dead."""

    def __init__(self, hierarchy: ClassHierarchy):
        self.hierarchy = hierarchy
        self.static_oracle = df.constant_static_fields(hierarchy.classes)
        # method id -> (feasible block indexes, site map); memoised per
        # method since many chains share prefixes.
        self._feasible_cache: Dict[int, FrozenSet[int]] = {}
        self._site_cache: Dict[int, List[Tuple[int, ir.InvokeExpr]]] = {}

    # -- per-method analysis -------------------------------------------------

    def _analyze(self, method: JavaMethod) -> None:
        if id(method) in self._feasible_cache:
            return
        cfg = build_cfg(method)
        analysis = df.ConstantPropagation(static_oracle=self.static_oracle)
        result = df.run_analysis(cfg, analysis)
        self._feasible_cache[id(method)] = result.reached
        sites: List[Tuple[int, ir.InvokeExpr]] = []
        for block in cfg.blocks:
            for stmt in block.statements:
                invoke = stmt.invoke_expr()
                if invoke is not None:
                    sites.append((block.index, invoke))
        self._site_cache[id(method)] = sites

    def _hop_is_dead(
        self, caller: JavaMethod, callee_name: str, callee_arity: int
    ) -> bool:
        """True iff every matching call site in ``caller`` is infeasible."""
        self._analyze(caller)
        feasible = self._feasible_cache[id(caller)]
        matching = [
            block_index
            for block_index, invoke in self._site_cache[id(caller)]
            if invoke.method_name == callee_name and invoke.arity == callee_arity
        ]
        if not matching:
            return False  # conservative: cannot see the hop, keep it
        return all(block_index not in feasible for block_index in matching)

    # -- chain refinement -----------------------------------------------------

    def chain_is_refuted(self, chain: GadgetChain) -> bool:
        """True iff some CALL hop of ``chain`` is provably dead."""
        for step, next_step in zip(chain.steps, chain.steps[1:]):
            if step.edge_to_next != "CALL":
                continue  # ALIAS hops have no call site to judge
            caller_cls = self.hierarchy.get(step.class_name)
            if caller_cls is None:
                continue
            caller = caller_cls.find_method(step.method_name, step.arity)
            if caller is None or not caller.has_body:
                continue
            if self._hop_is_dead(caller, next_step.method_name, next_step.arity):
                return True
        return False

    def refine(
        self, chains: Sequence[GadgetChain]
    ) -> Tuple[List[GadgetChain], List[GadgetChain]]:
        """Partition ``chains`` into (kept, refuted), preserving order."""
        kept: List[GadgetChain] = []
        refuted: List[GadgetChain] = []
        for chain in chains:
            (refuted if self.chain_is_refuted(chain) else kept).append(chain)
        return kept, refuted


def refine_chains(
    chains: Sequence[GadgetChain], hierarchy: ClassHierarchy
) -> Tuple[List[GadgetChain], List[GadgetChain]]:
    """Convenience wrapper: one-shot (kept, refuted) partition."""
    return GuardFeasibilityRefiner(hierarchy).refine(chains)

"""Tabby core: the paper's primary contribution.

* :mod:`repro.core.actions` — controllability lattice (Origin, Action,
  Polluted_Position, Formulas 2 and 4)
* :mod:`repro.core.controllability` — Algorithm 1
* :mod:`repro.core.cpg` — ORG/PCG/MAG construction (§III-B)
* :mod:`repro.core.sinks` / :mod:`repro.core.sources` — catalogs
* :mod:`repro.core.pathfinder` — Algorithms 2-3 (§III-D)
* :mod:`repro.core.chains` — gadget-chain model
* :mod:`repro.core.parallel` — sharded summary construction
* :mod:`repro.core.summary_cache` — persistent per-class summary cache
* :mod:`repro.core.cpg_check` — structural CPG verification
* :mod:`repro.core.refine` — opt-in guard-feasibility chain refinement
* :mod:`repro.core.api` — the :class:`Tabby` facade
"""

from repro.core.actions import Action, Origin, calc, traverse_tc
from repro.core.api import Tabby
from repro.core.blacklist import (
    DeserializationBlacklist,
    apply_blacklist,
    derive_blacklist,
)
from repro.core.chains import ChainStep, GadgetChain, dedupe_chains, filter_by_package
from repro.core.controllability import (
    CallSite,
    ControllabilityAnalysis,
    MethodSummary,
)
from repro.core.cpg import CPG, CPGBuilder, CPGStatistics
from repro.core.cpg_check import CPGCheckIssue, verify_cpg
from repro.core.parallel import ParallelConfig, available_cpus
from repro.core.refine import (
    GuardFeasibilityRefiner,
    RefutationReason,
    refine_chains,
)
from repro.core.pathfinder import GadgetChainFinder, SearchStatistics
from repro.core.sinks import DEFAULT_SINKS, SinkCatalog, SinkMethod
from repro.core.sources import SourceCatalog
from repro.core.summary_cache import SummaryCache, catalog_token

__all__ = [
    "ParallelConfig",
    "available_cpus",
    "SummaryCache",
    "catalog_token",
    "Tabby",
    "DeserializationBlacklist",
    "derive_blacklist",
    "apply_blacklist",
    "Action",
    "Origin",
    "calc",
    "traverse_tc",
    "ControllabilityAnalysis",
    "MethodSummary",
    "CallSite",
    "CPG",
    "CPGBuilder",
    "CPGStatistics",
    "CPGCheckIssue",
    "verify_cpg",
    "GuardFeasibilityRefiner",
    "RefutationReason",
    "refine_chains",
    "GadgetChainFinder",
    "SearchStatistics",
    "GadgetChain",
    "ChainStep",
    "dedupe_chains",
    "filter_by_package",
    "SinkCatalog",
    "SinkMethod",
    "DEFAULT_SINKS",
    "SourceCatalog",
]

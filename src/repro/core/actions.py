"""Controllability lattice: origins, weights, Action and Polluted_Position.

This module defines the value domain of the paper's controllability
analysis (§III-C):

* **Origin** — where a variable's current value comes from: the method
  receiver (``this``), a field of the receiver (``this.x``), a method
  parameter (``init-param-i``), a field of a parameter
  (``init-param-i.x``), or nowhere attacker-reachable (``null`` /
  uncontrollable).  Origins are exactly the values of Table III.
* **Weight** — the scalar controllability weighting of Table V: ``∞``
  (uncontrollable, encoded ``-1`` for graph-property friendliness),
  ``0`` (from the caller object / its fields), or ``i ∈ [1, n]`` (from
  parameter ``i``).
* **Action** — the per-method summary property: a mapping from
  ``{this, this.x, final-param-i, final-param-i.x, return}`` to origin
  strings (Table III / Figure 5(b)).
* **Polluted_Position (PP)** — the per-call-edge property: the weight of
  the receiver (index 0) and each argument (index ``i``), e.g.
  ``[∞, ∞, 2]`` in Figure 5(c).
* :func:`calc` — Formula 2; :func:`correct` composes into the caller's
  localMap via Formula 3 (implemented in the analysis driver).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "UNCONTROLLABLE_WEIGHT",
    "Origin",
    "UNCTRL",
    "THIS",
    "this_field",
    "param",
    "param_field",
    "Action",
    "calc",
    "traverse_tc",
]

#: the ``∞`` weight of Table V (graph properties cannot store math.inf)
UNCONTROLLABLE_WEIGHT = -1


class Origin:
    """Immutable origin tag.

    ``kind`` is one of ``"unctrl"``, ``"this"``, ``"param"``;
    ``index`` is the 1-based parameter index for param origins;
    ``field`` is the accessed field name, or None for the base value.
    """

    __slots__ = ("kind", "index", "field")

    def __init__(self, kind: str, index: int = 0, field: Optional[str] = None):
        self.kind = kind
        self.index = index
        self.field = field

    # -- constructors ------------------------------------------------------

    def with_field(self, field: str) -> "Origin":
        """The origin of ``value.field`` given this origin of ``value``.

        One level of field sensitivity, as in the paper: a field of a
        field collapses onto the outer field's origin.
        """
        if self.kind == "unctrl":
            return UNCTRL
        if self.field is not None:
            return self  # depth-1 sensitivity: o(a.x.y) = o(a.x)
        return Origin(self.kind, self.index, field)

    # -- views --------------------------------------------------------------

    @property
    def is_controllable(self) -> bool:
        return self.kind != "unctrl"

    @property
    def weight(self) -> int:
        """Table V weighting: -1 (∞), 0 (this/field), or the param index."""
        if self.kind == "unctrl":
            return UNCONTROLLABLE_WEIGHT
        if self.kind == "this":
            return 0
        return self.index

    def action_value(self) -> str:
        """This origin as an Action *value* string (Table III)."""
        if self.kind == "unctrl":
            return "null"
        if self.kind == "this":
            return "this" if self.field is None else f"this.{self.field}"
        base = f"init-param-{self.index}"
        return base if self.field is None else f"{base}.{self.field}"

    @classmethod
    def from_action_value(cls, value: str) -> "Origin":
        """Parse an Action value string back into an origin."""
        if value == "null":
            return UNCTRL
        head, _, field = value.partition(".")
        fieldname = field or None
        if head == "this":
            return cls("this", 0, fieldname)
        if head.startswith("init-param-"):
            return cls("param", int(head[len("init-param-") :]), fieldname)
        raise ValueError(f"not an Action value: {value!r}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Origin)
            and other.kind == self.kind
            and other.index == self.index
            and other.field == self.field
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.index, self.field))

    def __repr__(self) -> str:
        return f"Origin({self.action_value()})"


UNCTRL = Origin("unctrl")
THIS = Origin("this")


def this_field(field: str) -> Origin:
    return Origin("this", 0, field)


def param(index: int) -> Origin:
    if index < 1:
        raise ValueError("parameter origins are 1-based")
    return Origin("param", index)


def param_field(index: int, field: str) -> Origin:
    if index < 1:
        raise ValueError("parameter origins are 1-based")
    return Origin("param", index, field)


def join(a: Origin, b: Origin) -> Origin:
    """Prefer the more attacker-reachable origin (lower non-∞ weight);
    used when control-flow paths merge or a location is written twice."""
    if not a.is_controllable:
        return b
    if not b.is_controllable:
        return a
    return a if a.weight <= b.weight else b


class Action:
    """The per-method summary of §III-C: final state -> initial origin.

    Keys: ``this``, ``this.x``, ``final-param-i``, ``final-param-i.x``,
    ``return``.  Values: Action value strings per Table III.
    """

    def __init__(self, mapping: Optional[Dict[str, str]] = None):
        self.mapping: Dict[str, str] = dict(mapping or {})

    def set(self, key: str, origin: Origin) -> None:
        self.mapping[key] = origin.action_value()

    def get_origin(self, key: str) -> Origin:
        value = self.mapping.get(key)
        if value is None:
            return UNCTRL
        return Origin.from_action_value(value)

    @property
    def return_origin(self) -> Origin:
        return self.get_origin("return")

    def to_property(self) -> Dict[str, str]:
        """Graph-storable form (the Action node property).  Keys are
        sorted so the stored form is canonical: a cache round-trip or a
        parallel merge yields byte-identical node properties."""
        return {key: self.mapping[key] for key in sorted(self.mapping)}

    @classmethod
    def identity(cls, arity: int, has_this: bool) -> "Action":
        """The conservative summary used for recursion cycles and
        body-less methods: parameters keep their initial origins, the
        return value is unknown (``null``)."""
        action = cls()
        if has_this:
            action.mapping["this"] = "this"
        for i in range(1, arity + 1):
            action.mapping[f"final-param-{i}"] = f"init-param-{i}"
        action.mapping["return"] = "null"
        return action

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Action) and other.mapping == self.mapping

    def __repr__(self) -> str:
        items = ", ".join(f"{k}: {v}" for k, v in sorted(self.mapping.items()))
        return f"Action({{{items}}})"


def calc(action: Action, inputs: Dict[str, Origin]) -> Dict[str, Origin]:
    """Formula 2: compose a callee Action with caller-side origins.

    ``inputs`` maps the callee's initial-frame keys (``this``,
    ``this.x``, ``init-param-i``, ``init-param-i.x``) to caller origins.
    Returns caller origins for the callee's final-frame keys (``this``,
    ``this.x``, ``final-param-i``, ``final-param-i.x``, ``return``).

    When an Action value has a field suffix absent from ``inputs``, the
    composition derives it from the base entry via
    :meth:`Origin.with_field` — e.g. ``return: init-param-2.x`` with
    ``init-param-2 -> this.y`` yields ``this.y`` (depth-1 sensitivity).
    """
    out: Dict[str, Origin] = {}
    for key, value in action.mapping.items():
        if value == "null":
            out[key] = UNCTRL
            continue
        exact = inputs.get(value)
        if exact is not None:
            out[key] = exact
            continue
        head, _, field = value.partition(".")
        if field:
            base = inputs.get(head)
            out[key] = base.with_field(field) if base is not None else UNCTRL
        else:
            out[key] = UNCTRL
    return out


def traverse_tc(tc: List[int], pp: List[int]) -> Optional[List[int]]:
    """Formula 4: push a Trigger_Condition through a CALL edge's PP.

    ``tc`` holds positions in the callee frame that must be controllable
    (0 = receiver, i = argument i).  The result holds the corresponding
    caller-frame weights ``{PP[x] | x in TC}``.  Returns None when any
    required position is uncontrollable (``∞``) or the PP does not cover
    it — Algorithm 2 then rejects the edge.
    """
    out: List[int] = []
    seen = set()
    for position in tc:
        if position < 0 or position >= len(pp):
            return None
        weight = pp[position]
        if weight == UNCONTROLLABLE_WEIGHT:
            return None
        if weight not in seen:
            seen.add(weight)
            out.append(weight)
    return out

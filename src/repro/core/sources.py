"""Source-method catalog.

A *source* is a method that a deserialization mechanism invokes
automatically on attacker-supplied object graphs (§I, §II-A): the
Java-native callbacks (``readObject`` & friends, on classes that are
``Serializable``/``Externalizable``) and — for the marshalling
frameworks covered by marshalsec (XStream, Hessian, ...) — the
second-order entry points reachable from collection reconstruction,
such as ``hashCode``, ``equals``, ``compareTo`` and ``toString``.

Two profiles are provided:

* ``NATIVE`` — the Java-native deserialization callbacks only;
* ``EXTENDED`` — native plus the marshalling entry points; this is the
  profile the evaluation uses, since ysoserial/marshalsec chains start
  from both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaMethod

__all__ = ["SourceCatalog", "NATIVE_SOURCE_NAMES", "EXTENDED_SOURCE_NAMES"]

#: callbacks invoked by Java-native deserialization
NATIVE_SOURCE_NAMES: FrozenSet[str] = frozenset(
    {
        "readObject",
        "readExternal",
        "readResolve",
        "readObjectNoData",
        "validateObject",
        "finalize",
    }
)

#: second-order entry points used by marshalling-framework chains
EXTENDED_SOURCE_NAMES: FrozenSet[str] = NATIVE_SOURCE_NAMES | frozenset(
    {"hashCode", "equals", "compareTo", "toString"}
)


@dataclass(frozen=True)
class SourceCatalog:
    """Decides which defined methods are gadget-chain entry points."""

    names: FrozenSet[str] = EXTENDED_SOURCE_NAMES
    #: require the owning class to be (transitively) serializable
    require_serializable: bool = True

    @classmethod
    def native(cls) -> "SourceCatalog":
        return cls(names=NATIVE_SOURCE_NAMES)

    @classmethod
    def extended(cls) -> "SourceCatalog":
        return cls(names=EXTENDED_SOURCE_NAMES)

    def with_names(self, extra: Iterable[str]) -> "SourceCatalog":
        return SourceCatalog(self.names | frozenset(extra), self.require_serializable)

    def is_source(self, method: JavaMethod, hierarchy: ClassHierarchy) -> bool:
        """Whether ``method`` can start a gadget chain.

        The method must carry a body (an abstract declaration cannot
        execute anything), have one of the entry-point names, and —
        unless disabled — belong to a serializable class, since the
        deserializer only reconstructs serializable objects.
        """
        if not method.has_body:
            return False
        if method.name not in self.names:
            return False
        if method.is_static:
            return False
        if self.require_serializable:
            owner = method.owner
            if owner is None or not hierarchy.is_serializable(owner.name):
                return False
        return True

"""Incremental CPG re-analysis and cross-version chain diffing.

Given a previously built CPG plus a new set of class sources, the
:class:`IncrementalAnalyzer` avoids the cold rebuild-everything path by
exploiting one lemma about the summary identity
(:func:`repro.core.summary_cache.class_content_key`):

    A class's summary — and therefore its ORG/PCG/MAG graph slice —
    can only reference classes inside its *dependency closure*, and any
    text change inside the closure changes the class's content key.

So a class whose key is unchanged ("clean") has a byte-identical
summary and a structurally identical slice in both versions, and no
clean-to-dirty ``CALL``/``ALIAS``/``EXTEND``/``INTERFACE`` edge can
exist (a clean class referencing a dirty one would have the dirty text
in its closure).  The update therefore:

1. computes the **dirty set** — changed/added/removed classes (by
   content key) plus the cycle-tainted classes whose summaries are
   re-derived every build, mirroring the cache discipline;
2. **patches** the :class:`~repro.graphdb.graph.PropertyGraph` in
   place — deletes the dirty classes' slices, garbage-collects phantom
   nodes no longer demanded by any call site, rebuilds only the dirty
   slices in the cold builder's exact ORG -> PCG -> MAG order, and
   re-links the boundary (clean methods' ``ALIAS`` edges into newly
   created phantom nodes; ``JAR`` property updates for jar-only moves);
3. **renumbers canonically**: replays the cold builder's construction
   order symbolically to obtain the node/edge id permutation a cold
   build would assign, *verifies* the patched graph is key-bijective
   with that replay, and remaps ids in place.  Any mismatch raises
   :class:`~repro.errors.IncrementalError` and the analyzer falls back
   to a full rebuild — the patch is fast, the verdict is sound;
4. re-searches **only the dirty sinks** — those whose backward
   CALL/ALIAS cone intersects the touched node set (computed as a
   forward BFS from the touched nodes, the exact reversal used by the
   path finder's reachability pruning) — and splices the fresh per-sink
   chain lists into the untouched remainder deterministically.

The result is bit-identical to a cold rebuild: same chain list, same
graph fingerprint after the renumber.  ``tabby diff`` builds on this to
report chains that appeared/disappeared/survived between two versions
of a classpath (:func:`diff_chains`), with the refinement verdict layer
applied to appeared chains (:func:`apply_refinement_verdicts`).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.chains import GadgetChain, dedupe_chains
from repro.core.controllability import ControllabilityAnalysis, MethodSummary
from repro.core.cpg import (
    ALIAS,
    CALL,
    CLASS_LABEL,
    CPG,
    CPG_INDEX_ORDER,
    CPGBuilder,
    CPGStatistics,
    EXTEND,
    HAS,
    INTERFACE,
    METHOD_LABEL,
)
from repro.core.pathfinder import GadgetChainFinder, SearchStatistics
from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.core.summary_cache import (
    SummaryCache,
    catalog_token,
    class_content_key,
    decode_summary,
    dependency_closures,
    encode_summary,
)
from repro.errors import GraphError, IncrementalError
from repro.graphdb.graph import Node, PropertyGraph, Relationship
from repro.graphdb.index import IndexManager
from repro.graphdb.mvcc import VersionedGraph, WriteTransaction
from repro.graphdb.wal import WriteAheadLog
from repro.graphdb.traversal import Uniqueness
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass

__all__ = [
    "DIFF_SCHEMA_VERSION",
    "ChainDiff",
    "ChainSearchConfig",
    "IncrementalAnalyzer",
    "IncrementalResult",
    "IncrementalStatistics",
    "apply_refinement_verdicts",
    "diff_chains",
    "diff_to_dict",
]

#: bump when the ``tabby diff`` JSON document shape changes
DIFF_SCHEMA_VERSION = "tabby-diff/v1"

MethodKey = Tuple[str, str, int]


# ---------------------------------------------------------------------------
# Configuration / result records
# ---------------------------------------------------------------------------


@dataclass
class ChainSearchConfig:
    """The search knobs an incremental session keeps fixed across
    updates (they are part of the chain-list identity)."""

    max_depth: int = 12
    source_filter: Optional[str] = None
    follow_alias: bool = True
    max_results_per_sink: Optional[int] = 200
    uniqueness: Uniqueness = Uniqueness.RELATIONSHIP_PATH
    optimize: bool = True
    workers: int = 1


@dataclass
class IncrementalStatistics:
    """Phase timings and patch counters for one :meth:`update`."""

    total_seconds: float = 0.0
    #: wall-clock per phase: dirty / summaries / patch / renumber / search
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    classes_total: int = 0
    classes_changed: int = 0
    classes_added: int = 0
    classes_removed: int = 0
    classes_jar_moved: int = 0
    classes_reanalyzed: int = 0
    methods_reanalyzed: int = 0
    nodes_deleted: int = 0
    nodes_created: int = 0
    rels_deleted: int = 0
    rels_created: int = 0
    sinks_total: int = 0
    sinks_researched: int = 0
    sinks_reused: int = 0
    #: the patch could not be verified and a cold rebuild ran instead
    full_rebuild: bool = False
    full_rebuild_reason: str = ""

    def as_row(self) -> Dict[str, Any]:
        return {
            "total_seconds": round(self.total_seconds, 6),
            "phase_seconds": {
                k: round(v, 6) for k, v in self.phase_seconds.items()
            },
            "classes_total": self.classes_total,
            "classes_changed": self.classes_changed,
            "classes_added": self.classes_added,
            "classes_removed": self.classes_removed,
            "classes_jar_moved": self.classes_jar_moved,
            "classes_reanalyzed": self.classes_reanalyzed,
            "methods_reanalyzed": self.methods_reanalyzed,
            "nodes_deleted": self.nodes_deleted,
            "nodes_created": self.nodes_created,
            "rels_deleted": self.rels_deleted,
            "rels_created": self.rels_created,
            "sinks_total": self.sinks_total,
            "sinks_researched": self.sinks_researched,
            "sinks_reused": self.sinks_reused,
            "full_rebuild": self.full_rebuild,
            "full_rebuild_reason": self.full_rebuild_reason,
        }


@dataclass
class IncrementalResult:
    """One update's outcome: the full (spliced) chain list plus the
    patch diagnostics."""

    chains: List[GadgetChain]
    statistics: IncrementalStatistics
    dirty_classes: List[str]


# ---------------------------------------------------------------------------
# Chain diffing
# ---------------------------------------------------------------------------


@dataclass
class ChainDiff:
    """Chains partitioned by fate across two versions.

    Identity is :attr:`GadgetChain.key` — the (class, method, arity)
    step sequence.  ``appeared_verdicts`` is filled (aligned with
    ``appeared``) when the refinement verdict layer ran.
    """

    appeared: List[GadgetChain]
    disappeared: List[GadgetChain]
    survived: List[GadgetChain]
    old_total: int
    new_total: int
    appeared_verdicts: Optional[List[Optional[Dict[str, Any]]]] = None
    statistics: Optional[IncrementalStatistics] = None


def diff_chains(
    old_chains: Sequence[GadgetChain], new_chains: Sequence[GadgetChain]
) -> ChainDiff:
    """Partition two chain lists by fate, preserving each list's order
    (appeared/survived follow the new list, disappeared the old)."""
    old_keys = {chain.key for chain in old_chains}
    new_keys = {chain.key for chain in new_chains}
    return ChainDiff(
        appeared=[c for c in new_chains if c.key not in old_keys],
        disappeared=[c for c in old_chains if c.key not in new_keys],
        survived=[c for c in new_chains if c.key in old_keys],
        old_total=len(old_chains),
        new_total=len(new_chains),
    )


def apply_refinement_verdicts(
    diff: ChainDiff,
    hierarchy: ClassHierarchy,
    refine_guards: bool = False,
    refine: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
) -> ChainDiff:
    """Run the verdict layer over the *appeared* chains only.

    Survived chains were already reported by the old version and
    disappeared chains no longer exist, so only the new arrivals need a
    feasibility verdict.  Populates ``diff.appeared_verdicts`` in place
    (one row per appeared chain; ``None`` rows mean no layer touched
    that chain) and returns the diff.
    """
    rows: Dict[Tuple, Dict[str, Any]] = {}
    chains: List[GadgetChain] = list(diff.appeared)
    if refine_guards:
        from repro.core.refine import GuardFeasibilityRefiner

        kept, refuted = GuardFeasibilityRefiner(hierarchy).refine_with_reasons(
            chains
        )
        for chain, reason in refuted:
            rows[chain.key] = {
                "status": "refuted",
                "refutation": reason.as_dict(),
            }
        chains = kept
    if refine:
        from repro.analysis.chain_refiner import ChainRefiner

        result = ChainRefiner(
            hierarchy, modes=tuple(refine), cache_dir=cache_dir
        ).refine(chains)
        for chain, verdict in zip(result.chains, result.verdicts):
            rows[chain.key] = {"status": verdict.status}
        for chain, reason in result.refuted:
            rows[chain.key] = {
                "status": "refuted",
                "refutation": reason.as_dict(),
            }
    diff.appeared_verdicts = [rows.get(c.key) for c in diff.appeared]
    return diff


def _chain_record(chain: GadgetChain) -> Dict[str, Any]:
    return {
        "steps": [s.qualified for s in chain.steps],
        "key": [[s.class_name, s.method_name, s.arity] for s in chain.steps],
        "sink_category": chain.sink_category,
    }


def diff_to_dict(diff: ChainDiff) -> Dict[str, Any]:
    """The versioned ``tabby diff`` JSON document."""
    appeared: List[Dict[str, Any]] = []
    for index, chain in enumerate(diff.appeared):
        record = _chain_record(chain)
        if diff.appeared_verdicts is not None:
            verdict = diff.appeared_verdicts[index]
            if verdict is not None:
                record.update(verdict)
        appeared.append(record)
    document: Dict[str, Any] = {
        "schema": DIFF_SCHEMA_VERSION,
        "appeared": appeared,
        "disappeared": [_chain_record(c) for c in diff.disappeared],
        "survived": [_chain_record(c) for c in diff.survived],
        "summary": {
            "appeared": len(diff.appeared),
            "disappeared": len(diff.disappeared),
            "survived": len(diff.survived),
            "old_total": diff.old_total,
            "new_total": diff.new_total,
        },
    }
    if diff.statistics is not None:
        document["incremental"] = diff.statistics.as_row()
    return document


# ---------------------------------------------------------------------------
# The incremental analyzer
# ---------------------------------------------------------------------------


class IncrementalAnalyzer:
    """A long-lived analysis session over successive class versions.

    Construction runs one cold build + full search.  Each
    :meth:`update` patches the CPG and chain list in place; the output
    is always bit-identical to a cold rebuild of the new version (the
    differential battery in ``tests/core/test_incremental.py`` gates
    this for every edit script).
    """

    def __init__(
        self,
        classes: Iterable[JavaClass],
        sinks: Optional[SinkCatalog] = None,
        sources: Optional[SourceCatalog] = None,
        prune_uncontrollable_calls: bool = True,
        cache_dir: Optional[str] = None,
        cache_max_mb: Optional[float] = None,
        max_recursion_depth: int = 64,
        search: Optional[ChainSearchConfig] = None,
        versioned: bool = False,
        wal_path: Optional[str] = None,
        wal_fsync: bool = True,
        _defer: bool = False,
    ):
        self.sinks = sinks if sinks is not None else SinkCatalog()
        self.sources = sources if sources is not None else SourceCatalog.extended()
        self.prune_uncontrollable_calls = prune_uncontrollable_calls
        self.max_recursion_depth = max_recursion_depth
        self.search = search if search is not None else ChainSearchConfig()
        self._token = catalog_token(self.sinks, self.sources)
        self.cache: Optional[SummaryCache] = (
            SummaryCache(cache_dir, self._token, max_mb=cache_max_mb)
            if cache_dir
            else None
        )

        # session state, established by the cold build
        self.classes: List[JavaClass] = []
        self.hierarchy: ClassHierarchy = ClassHierarchy([])
        self.cpg: Optional[CPG] = None
        self.summaries: Dict[str, MethodSummary] = {}
        self.class_keys: Dict[str, str] = {}
        self.tainted_classes: Set[str] = set()
        #: signature-level view of the cycle taint, seeded into the
        #: next update's analysis so nested consults keep re-deriving
        self.tainted_sigs: Set[str] = set()
        self.chains: List[GadgetChain] = []
        self.last_statistics: Optional[IncrementalStatistics] = None
        self.last_search_stats = SearchStatistics()
        self._class_node_ids: Dict[str, int] = {}
        self._method_node_ids: Dict[MethodKey, int] = {}
        #: per-sink chain lists keyed by (CLASSNAME, NAME, ARITY)
        self._per_sink: Dict[MethodKey, List[GadgetChain]] = {}

        #: MVCC mode (``versioned=True`` or a ``wal_path``): every
        #: committed graph state is published as a frozen version on
        #: ``self.versioned``; concurrent readers pin snapshots with
        #: ``self.versioned.begin_snapshot()`` and keep reading the
        #: prior version while :meth:`update` patches inside a
        #: write transaction.  With ``wal_path`` the versions are also
        #: durable (journalled/compacted before publication).
        self._versioned_requested = bool(versioned or wal_path)
        self._wal_path = wal_path
        self._wal_fsync = wal_fsync
        self.versioned: Optional[VersionedGraph] = None

        if not _defer:
            self._cold_build(list(classes))

    # -- construction -------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls, path: str, classes: Iterable[JavaClass], **kwargs: Any
    ) -> "IncrementalAnalyzer":
        """Warm-start a session from a persisted CPG (any snapshot
        format) plus the classes it was built from.

        The graph is loaded, summaries are recomputed (warming from
        ``cache_dir`` when set), and the snapshot is *verified* against
        a symbolic replay of the cold build — a stale or mismatched
        snapshot raises :class:`IncrementalError` instead of silently
        producing a diverged session.
        """
        from repro.graphdb.storage import load_graph

        session = cls(classes=[], _defer=True, **kwargs)
        class_list = list(classes)
        graph = load_graph(path)
        if not isinstance(graph, PropertyGraph):  # pragma: no cover - defensive
            graph = graph.materialize()
        hierarchy = ClassHierarchy(class_list)
        builder = CPGBuilder(
            hierarchy,
            sinks=session.sinks,
            sources=session.sources,
            prune_uncontrollable_calls=session.prune_uncontrollable_calls,
            parallel=None,
            cache=session.cache,
            max_recursion_depth=session.max_recursion_depth,
        )
        summaries, analyzed, cached = builder._compute_summaries()
        statistics = CPGStatistics(
            jar_count=len({c.jar_name for c in class_list if c.jar_name}),
            class_node_count=graph.indexes.label_count(CLASS_LABEL),
            method_node_count=graph.indexes.label_count(METHOD_LABEL),
            relationship_edge_count=graph.relationship_count,
            analyzed_method_count=analyzed,
            cached_method_count=cached,
        )
        session.cpg = CPG(graph, hierarchy, statistics, summaries)
        session._adopt(class_list, hierarchy, summaries, builder.last_tainted)
        try:
            session._renumber(hierarchy, summaries)
        except IncrementalError as exc:
            raise IncrementalError(
                f"snapshot {path} does not match a cold build of the given "
                f"classes: {exc}"
            ) from exc
        session._search_all()
        session._publish_cold()
        return session

    def _cold_build(self, classes: List[JavaClass]) -> None:
        hierarchy = ClassHierarchy(classes)
        builder = CPGBuilder(
            hierarchy,
            sinks=self.sinks,
            sources=self.sources,
            prune_uncontrollable_calls=self.prune_uncontrollable_calls,
            parallel=None,
            cache=self.cache,
            max_recursion_depth=self.max_recursion_depth,
        )
        self.cpg = builder.build()
        self._adopt(classes, hierarchy, self.cpg.summaries, builder.last_tainted)
        self._class_node_ids = {
            name: node.id for name, node in builder._class_nodes.items()
        }
        self._method_node_ids = {
            key: node.id for key, node in builder._method_nodes.items()
        }
        self._search_all()
        self._publish_cold()

    def _publish_cold(self) -> None:
        """Publish a freshly (re)built graph as the next MVCC version.

        First call creates the version chain (and the WAL, when a path
        was configured); later calls — cold-rebuild fallbacks — commit
        the new graph via a replace transaction, which checkpoints the
        WAL since a rebuilt graph has no op journal against the prior
        version.
        """
        if not self._versioned_requested:
            return
        graph = self.cpg.graph
        if self.versioned is None:
            wal = None
            if self._wal_path:
                directory = os.path.dirname(self._wal_path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                wal = WriteAheadLog.create(
                    self._wal_path, graph, 0, fsync=self._wal_fsync
                )
            self.versioned = VersionedGraph(graph, wal=wal)
        else:
            with self.versioned.write_txn() as txn:
                txn.replace(graph)

    def _adopt(
        self,
        classes: List[JavaClass],
        hierarchy: ClassHierarchy,
        summaries: Dict[str, MethodSummary],
        tainted_sigs: Set[str],
    ) -> None:
        """Install a version's classes/hierarchy/summaries plus the
        derived dirty-set bookkeeping (content keys, tainted owners)."""
        from repro.jvm.jasm import dump_class

        self.classes = classes
        self.hierarchy = hierarchy
        self.summaries = summaries
        texts = {cls.name: dump_class(cls) for cls in classes}
        closures = dependency_closures(hierarchy)
        self.class_keys = {
            cls.name: class_content_key(
                cls.name, texts, closures[cls.name], self._token
            )
            for cls in classes
        }
        self.tainted_sigs = set(tainted_sigs)
        self.tainted_classes = {
            cls.name
            for cls in classes
            if any(
                m.has_body and m.signature.signature in tainted_sigs
                for m in cls.methods.values()
            )
        }

    # -- search -------------------------------------------------------------

    def _finder(self) -> GadgetChainFinder:
        cfg = self.search
        return GadgetChainFinder(
            self.cpg,
            max_depth=cfg.max_depth,
            follow_alias=cfg.follow_alias,
            max_results_per_sink=cfg.max_results_per_sink,
            uniqueness=cfg.uniqueness,
            optimize=cfg.optimize,
            workers=cfg.workers,
        )

    @staticmethod
    def _sink_key(node: Node) -> MethodKey:
        return (node.get("CLASSNAME"), node.get("NAME"), node.get("ARITY"))

    def _search_all(self) -> None:
        finder = self._finder()
        sinks = self.cpg.sink_nodes()
        per_sink = finder.find_chains_per_sink(
            sinks, source_filter=self.search.source_filter
        )
        self.last_search_stats = finder.last_search_stats
        self._per_sink = {
            self._sink_key(sink): bucket
            for sink, bucket in zip(sinks, per_sink)
        }
        self.chains = dedupe_chains(
            [chain for bucket in per_sink for chain in bucket]
        )

    # -- the update pipeline ------------------------------------------------

    def update(self, new_classes: Iterable[JavaClass]) -> IncrementalResult:
        """Patch the session to a new class version.

        Falls back to a cold rebuild (recording why in the statistics)
        whenever the in-place patch cannot be verified equivalent —
        correctness never depends on the patch being right, only speed
        does.
        """
        started = time.perf_counter()
        stats = IncrementalStatistics()
        class_list = list(new_classes)
        try:
            if self.versioned is not None:
                result = self._update_versioned(class_list, stats, started)
            else:
                result = self._update_in_place(class_list, stats, started)
        except (IncrementalError, GraphError, KeyError) as exc:
            stats.full_rebuild = True
            stats.full_rebuild_reason = f"{type(exc).__name__}: {exc}"
            t0 = time.perf_counter()
            self._cold_build(class_list)
            stats.phase_seconds["rebuild"] = time.perf_counter() - t0
            stats.classes_total = len(class_list)
            stats.sinks_total = len(self._per_sink)
            stats.sinks_researched = len(self._per_sink)
            stats.total_seconds = time.perf_counter() - started
            result = IncrementalResult(
                chains=list(self.chains),
                statistics=stats,
                dirty_classes=sorted(self.class_keys),
            )
        self.last_statistics = stats
        return result

    def _update_versioned(
        self,
        class_list: List[JavaClass],
        stats: IncrementalStatistics,
        started: float,
    ) -> IncrementalResult:
        """Run the in-place update inside an MVCC write transaction.

        The patch mutates a copy-on-write staging overlay; every
        snapshot pinned via ``self.versioned.begin_snapshot()`` keeps
        reading the prior version untouched.  The new version is
        committed (atomically published, WAL first) right after the
        canonical renumber, before the chain re-search reads it.
        """
        base = self.cpg.graph
        with self.versioned.write_txn() as txn:
            self.cpg.graph = txn.graph
            try:
                result = self._update_in_place(
                    class_list, stats, started, txn=txn
                )
            except BaseException:
                self.cpg.graph = base
                raise
        if txn.aborted:
            # nothing changed; keep serving the already-committed version
            self.cpg.graph = base
        return result

    def _update_in_place(
        self,
        class_list: List[JavaClass],
        stats: IncrementalStatistics,
        started: float,
        txn: Optional[WriteTransaction] = None,
    ) -> IncrementalResult:
        from repro.jvm.jasm import dump_class

        # -- phase: dirty-set computation ----------------------------------
        t0 = time.perf_counter()
        new_hierarchy = ClassHierarchy(class_list)
        new_texts = {cls.name: dump_class(cls) for cls in class_list}
        closures = dependency_closures(new_hierarchy)
        new_keys = {
            cls.name: class_content_key(
                cls.name, new_texts, closures[cls.name], self._token
            )
            for cls in class_list
        }
        old_keys = self.class_keys
        changed = {
            name
            for name, key in new_keys.items()
            if name in old_keys and old_keys[name] != key
        }
        added = set(new_keys) - set(old_keys)
        removed = set(old_keys) - set(new_keys)
        # Cycle-tainted classes do NOT need wholesale re-analysis: a
        # tainted root's re-derivation is a pure function of its
        # (unchanged) dependency closure, so the previous root-final
        # summaries are reused, seeded *as tainted* so nested consults
        # under new dirty roots still re-derive — exactly the cold
        # semantics, minus the per-update re-derivation cost.
        reanalyze = changed | added
        graph_dirty_old = changed | removed
        graph_dirty_new = changed | added
        jar_moved: Dict[str, Optional[str]] = {}
        for name in new_keys:
            if name in graph_dirty_new:
                continue
            old_cls = self.hierarchy.get(name)
            new_cls = new_hierarchy.get(name)
            if old_cls is not None and old_cls.jar_name != new_cls.jar_name:
                jar_moved[name] = new_cls.jar_name

        # Adopt the previous session's objects for every clean class:
        # their jasm text is identical (same content key), so summaries
        # resolved against them stay valid as-is and the merge phase
        # can skip the encode/decode re-bind — the difference between
        # an O(edit) and an O(corpus) update.  Jar moves only touch the
        # (key-irrelevant) jar attribute, patched on the object here
        # and on the graph node later.
        substituted: List[JavaClass] = []
        for cls in class_list:
            old_cls = (
                None if cls.name in graph_dirty_new
                else self.hierarchy.get(cls.name)
            )
            if old_cls is None:
                substituted.append(cls)
                continue
            if old_cls.jar_name != cls.jar_name:
                old_cls.jar_name = cls.jar_name
            substituted.append(old_cls)
        class_list = substituted
        new_hierarchy = ClassHierarchy(class_list)

        stats.classes_total = len(class_list)
        stats.classes_changed = len(changed)
        stats.classes_added = len(added)
        stats.classes_removed = len(removed)
        stats.classes_jar_moved = len(jar_moved)
        stats.classes_reanalyzed = len(reanalyze)
        stats.phase_seconds["dirty"] = time.perf_counter() - t0

        dirty_classes = sorted(graph_dirty_old | graph_dirty_new)

        if not (graph_dirty_old or graph_dirty_new):
            # no structural change: adopt the new objects, patch JAR
            # properties, and keep every cached result
            for name, jar in sorted(jar_moved.items()):
                node_id = self._class_node_ids[name]
                self.cpg.graph.set_node_property(node_id, "JAR", jar)
            self.classes = class_list
            self.hierarchy = new_hierarchy
            self.cpg.hierarchy = new_hierarchy
            self.class_keys = new_keys
            self.cpg.statistics.jar_count = len(
                {c.jar_name for c in class_list if c.jar_name}
            )
            if txn is not None and not jar_moved:
                txn.abort()  # byte-identical version; don't publish a copy
            stats.sinks_total = len(self._per_sink)
            stats.sinks_reused = len(self._per_sink)
            stats.total_seconds = time.perf_counter() - started
            return IncrementalResult(
                chains=list(self.chains),
                statistics=stats,
                dirty_classes=dirty_classes,
            )

        # -- phase: summary merge ------------------------------------------
        t0 = time.perf_counter()
        merged, tainted_sigs, reanalyzed_methods = self._merge_summaries(
            new_hierarchy, new_keys, reanalyze, closures
        )
        if self.cache is not None:
            stale = [old_keys[name] for name in sorted(changed | removed)]
            self.cache.invalidate(stale)
        stats.methods_reanalyzed = reanalyzed_methods
        stats.phase_seconds["summaries"] = time.perf_counter() - t0

        # -- phase: in-place graph patch -----------------------------------
        t0 = time.perf_counter()
        touched = self._patch_graph(
            new_hierarchy,
            merged,
            graph_dirty_old,
            graph_dirty_new,
            jar_moved,
            stats,
        )
        stats.phase_seconds["patch"] = time.perf_counter() - t0

        # -- phase: canonical renumber + verification ----------------------
        t0 = time.perf_counter()
        if txn is not None:
            # the renumber reassigns entity ids directly and swaps the
            # top-level containers — clone every still-shared entity
            # first so the frozen base version readers hold stays intact
            txn.ensure_private_entities()
        self._renumber(new_hierarchy, merged)
        self._recompute_statistics(class_list, new_hierarchy, merged)
        stats.phase_seconds["renumber"] = time.perf_counter() - t0

        # install the new version's state before searching (the finder
        # reads self.cpg)
        self.cpg.hierarchy = new_hierarchy
        self.cpg.summaries = merged
        self.classes = class_list
        self.hierarchy = new_hierarchy
        self.summaries = merged
        self.class_keys = new_keys
        self.tainted_sigs = tainted_sigs
        self.tainted_classes = {
            cls.name
            for cls in class_list
            if any(
                m.has_body and m.signature.signature in tainted_sigs
                for m in cls.methods.values()
            )
        }

        if txn is not None:
            # publish before searching: the graph is final, so readers
            # can switch to the new version while the (read-only) chain
            # re-search below runs against the same frozen state
            txn.commit()

        # -- phase: dirty-cone re-search + splice --------------------------
        t0 = time.perf_counter()
        self._research_and_splice(touched, stats)
        stats.phase_seconds["search"] = time.perf_counter() - t0

        stats.total_seconds = time.perf_counter() - started
        return IncrementalResult(
            chains=list(self.chains),
            statistics=stats,
            dirty_classes=dirty_classes,
        )

    # -- summary merge ------------------------------------------------------

    def _identity_stable(
        self,
        name: str,
        new_hierarchy: ClassHierarchy,
        closures: Dict[str, List[str]],
    ) -> bool:
        """Whether a clean class's old summary objects can be reused
        as-is: every closure member must be the *same object* in both
        hierarchies (resolved method references point into them)."""
        for dep in closures[name]:
            if new_hierarchy.get(dep) is not self.hierarchy.get(dep):
                return False
        return True

    def _merge_summaries(
        self,
        new_hierarchy: ClassHierarchy,
        new_keys: Dict[str, str],
        reanalyze: Set[str],
        closures: Dict[str, List[str]],
    ) -> Tuple[Dict[str, MethodSummary], Set[str], int]:
        """Clean summaries carried over (rebound to the new hierarchy
        when the class objects differ), dirty classes re-analysed with
        the clean set seeded — the exact cache-warm cold-build recipe,
        so the merged map equals a cold build's."""
        by_class: Dict[str, List[MethodSummary]] = {}
        for summary in self.summaries.values():
            by_class.setdefault(summary.method.class_name, []).append(summary)

        seeded: Dict[str, MethodSummary] = {}
        for name in new_keys:
            if name in reanalyze:
                continue
            old_summaries = by_class.get(name, ())
            if self._identity_stable(name, new_hierarchy, closures):
                for summary in old_summaries:
                    seeded[summary.method.signature.signature] = summary
                continue
            try:
                for summary in old_summaries:
                    rebound = decode_summary(
                        encode_summary(summary), new_hierarchy
                    )
                    seeded[rebound.method.signature.signature] = rebound
            except (KeyError, TypeError, ValueError) as exc:
                raise IncrementalError(
                    f"cannot rebind clean summary of {name}: {exc}"
                ) from exc

        dirty_methods = [
            method
            for name in sorted(reanalyze)
            for method in new_hierarchy.get(name).methods.values()
            if method.has_body
        ]
        analysis = ControllabilityAnalysis(
            new_hierarchy, max_recursion_depth=self.max_recursion_depth
        )
        analysis.seed_summaries(seeded.values())
        # carried tainted finals must stay tainted in the memo: a
        # nested consult under a dirty root has to re-derive the cycle
        # member under *its* root's chain, just as a cold build would
        analysis.cycle_tainted.update(
            sig for sig in self.tainted_sigs if sig in seeded
        )
        analysis.analyze_methods(dirty_methods)
        tainted_sigs = set(analysis.cycle_tainted)

        merged = dict(seeded)
        for method in dirty_methods:
            merged[method.signature.signature] = analysis.summary_for(method)

        if self.cache is not None:
            for name in sorted(reanalyze):
                cls = new_hierarchy.get(name)
                keys = [
                    m.signature.signature
                    for m in cls.methods.values()
                    if m.has_body
                ]
                if any(key in tainted_sigs for key in keys):
                    self.cache.stats.skipped_tainted += 1
                    continue
                records = [
                    encode_summary(merged[key]) for key in sorted(keys)
                ]
                self.cache.store(new_keys[name], name, records)

        ordered = {key: merged[key] for key in sorted(merged)}
        return ordered, tainted_sigs, len(dirty_methods)

    # -- graph patch --------------------------------------------------------

    def _patch_graph(
        self,
        new_hierarchy: ClassHierarchy,
        merged: Dict[str, MethodSummary],
        graph_dirty_old: Set[str],
        graph_dirty_new: Set[str],
        jar_moved: Dict[str, Optional[str]],
        stats: IncrementalStatistics,
    ) -> Set[MethodKey]:
        graph = self.cpg.graph
        class_ids = self._class_node_ids
        method_ids = self._method_node_ids
        prune = self.prune_uncontrollable_calls
        touched: Set[MethodKey] = set()

        nodes_before = graph.node_count
        rels_before = graph.relationship_count

        def record_neighbors(node_id: int) -> None:
            for rel_type in (CALL, ALIAS):
                for rel in graph.relationships_of(node_id, rel_type):
                    other_id = rel.other_id(node_id)
                    other = graph.node(other_id)
                    if other.has_label(METHOD_LABEL):
                        touched.add(self._sink_key(other))

        # 1. delete the dirty defined classes' slices (methods first so
        # the class nodes shed their HAS edges), including any phantom
        # method nodes hanging off them — they are rebuilt on demand
        phantom_by_owner: Dict[str, List[MethodKey]] = {}
        for key, node_id in method_ids.items():
            if graph.node(node_id).get("IS_PHANTOM"):
                phantom_by_owner.setdefault(key[0], []).append(key)
        for name in sorted(graph_dirty_old):
            old_cls = self.hierarchy.get(name)
            if old_cls is None:
                raise IncrementalError(
                    f"dirty class {name} missing from the previous hierarchy"
                )
            doomed = [
                (name, m.name, m.arity) for m in old_cls.methods.values()
            ] + phantom_by_owner.get(name, [])
            for key in doomed:
                node_id = method_ids.pop(key, None)
                if node_id is None:
                    continue  # overloads sharing a (name, arity) key
                touched.add(key)
                record_neighbors(node_id)
                graph.delete_node(node_id, detach=True)
            class_id = class_ids.pop(name, None)
            if class_id is not None:
                graph.delete_node(class_id, detach=True)

        # 2. phantom garbage collection: a phantom method node exists in
        # a cold build iff some live summary's unresolved call site
        # demands it; a phantom class node iff it owns a demanded
        # phantom method or is a phantom supertype of a defined class
        required_phantoms: Set[MethodKey] = set()
        for summary in merged.values():
            for site in summary.call_sites:
                if site.resolved is not None:
                    continue
                if site.kind == "dynamic":
                    continue
                if site.pruned and prune:
                    continue
                required_phantoms.add(
                    (site.callee_class, site.callee_name, site.arity)
                )
        required_phantom_classes = {
            key[0]
            for key in required_phantoms
            if new_hierarchy.get(key[0]) is None
        }
        for cls in new_hierarchy.classes:
            if cls.super_name and new_hierarchy.get(cls.super_name) is None:
                required_phantom_classes.add(cls.super_name)
            for iface in cls.interface_names:
                if new_hierarchy.get(iface) is None:
                    required_phantom_classes.add(iface)
        dying_classes = {
            name
            for name, node_id in class_ids.items()
            if graph.node(node_id).get("IS_PHANTOM")
            and name not in required_phantom_classes
        }
        for key in sorted(method_ids):
            node_id = method_ids[key]
            if not graph.node(node_id).get("IS_PHANTOM"):
                continue
            if key in required_phantoms and key[0] not in dying_classes:
                continue
            touched.add(key)
            record_neighbors(node_id)
            graph.delete_node(node_id, detach=True)
            del method_ids[key]
        for name in sorted(dying_classes):
            graph.delete_node(class_ids.pop(name), detach=True)

        nodes_after_delete = graph.node_count
        rels_after_delete = graph.relationship_count
        stats.nodes_deleted = nodes_before - nodes_after_delete
        stats.rels_deleted = rels_before - rels_after_delete

        # 3. rebuild the dirty slices in the cold builder's phase order
        created_classes: Set[str] = set()
        new_phantom_methods: List[MethodKey] = []

        def get_class_node(name: str) -> Node:
            node_id = class_ids.get(name)
            if node_id is not None:
                return graph.node(node_id)
            cls = new_hierarchy.get(name)
            if cls is not None:
                props: Dict[str, Any] = {
                    "NAME": cls.name,
                    "IS_INTERFACE": cls.is_interface,
                    "IS_ABSTRACT": cls.is_abstract,
                    "IS_SERIALIZABLE": new_hierarchy.is_serializable(cls.name),
                    "SUPER": cls.super_name,
                    "INTERFACES": list(cls.interface_names),
                    "JAR": cls.jar_name,
                    "IS_PHANTOM": False,
                }
                created_classes.add(name)
            else:
                props = {"NAME": name, "IS_PHANTOM": True}
            node = graph.create_node([CLASS_LABEL], props)
            class_ids[name] = node.id
            return node

        def create_defined_method_node(
            cls_name: str, method: Any
        ) -> Node:
            sig = method.signature
            sink = self.sinks.lookup(cls_name, method.name)
            props: Dict[str, Any] = {
                "NAME": method.name,
                "CLASSNAME": cls_name,
                "SIGNATURE": sig.signature,
                "SUBSIGNATURE": sig.sub_signature,
                "ARITY": method.arity,
                "IS_STATIC": method.is_static,
                "IS_ABSTRACT": method.is_abstract,
                "HAS_BODY": method.has_body,
                "IS_PHANTOM": False,
                "IS_SOURCE": self.sources.is_source(method, new_hierarchy),
                "IS_SINK": sink is not None,
            }
            if sink is not None:
                props["SINK_TYPE"] = sink.category
                props["TRIGGER_CONDITION"] = list(sink.trigger_condition)
            node = graph.create_node([METHOD_LABEL], props)
            method_ids[(cls_name, method.name, method.arity)] = node.id
            return node

        def get_phantom_method_node(
            class_name: str, method_name: str, arity: int
        ) -> Node:
            key = (class_name, method_name, arity)
            node_id = method_ids.get(key)
            if node_id is not None:
                return graph.node(node_id)
            sink = self.sinks.lookup(class_name, method_name)
            props: Dict[str, Any] = {
                "NAME": method_name,
                "CLASSNAME": class_name,
                "SIGNATURE": f"<{class_name}: {method_name}/{arity}>",
                "ARITY": arity,
                "HAS_BODY": False,
                "IS_PHANTOM": True,
                "IS_SOURCE": False,
                "IS_SINK": sink is not None,
            }
            if sink is not None:
                props["SINK_TYPE"] = sink.category
                props["TRIGGER_CONDITION"] = list(sink.trigger_condition)
            node = graph.create_node([METHOD_LABEL], props)
            method_ids[key] = node.id
            touched.add(key)
            new_phantom_methods.append(key)
            graph.create_relationship(HAS, get_class_node(class_name), node)
            return node

        # 3a. ORG slices
        for name in sorted(graph_dirty_new):
            if name in class_ids and name not in created_classes:
                raise IncrementalError(
                    f"class {name} unexpectedly already has a node"
                )
            cls = new_hierarchy.get(name)
            class_node = get_class_node(name)
            if cls.super_name:
                graph.create_relationship(
                    EXTEND, class_node, get_class_node(cls.super_name)
                )
            for iface in cls.interface_names:
                graph.create_relationship(
                    INTERFACE, class_node, get_class_node(iface)
                )
            for method in cls.methods.values():
                key = (name, method.name, method.arity)
                node_id = method_ids.get(key)
                if node_id is None:
                    method_node = create_defined_method_node(name, method)
                    touched.add(key)
                else:
                    method_node = graph.node(node_id)
                graph.create_relationship(HAS, class_node, method_node)

        # 3b. PCG slices (+ ACTION properties), sorted signature order
        dirty_sigs = [
            sig
            for sig in merged
            if merged[sig].method.class_name in graph_dirty_new
        ]
        for sig in dirty_sigs:
            summary = merged[sig]
            caller_key = (
                summary.method.class_name,
                summary.method.name,
                summary.method.arity,
            )
            caller_id = method_ids.get(caller_key)
            if caller_id is None:
                raise IncrementalError(
                    f"dirty caller {caller_key} has no method node"
                )
            touched.add(caller_key)
            caller_node = graph.node(caller_id)
            for site in summary.call_sites:
                if site.pruned and prune:
                    continue
                if site.kind == "dynamic":
                    continue
                if site.resolved is not None:
                    callee_key = (
                        site.resolved.class_name,
                        site.resolved.name,
                        site.resolved.arity,
                    )
                    callee_id = method_ids.get(callee_key)
                    if callee_id is None:
                        raise IncrementalError(
                            f"resolved callee {callee_key} has no method node"
                        )
                    callee_node = graph.node(callee_id)
                else:
                    callee_key = (
                        site.callee_class, site.callee_name, site.arity
                    )
                    callee_node = get_phantom_method_node(*callee_key)
                touched.add(callee_key)
                graph.create_relationship(
                    CALL,
                    caller_node,
                    callee_node,
                    {
                        "POLLUTED_POSITION": list(site.polluted_position),
                        "KIND": site.kind,
                        "SITE_INDEX": site.site_index,
                        "PRUNED": site.pruned,
                    },
                )
        for sig in dirty_sigs:
            summary = merged[sig]
            node_id = method_ids[
                (
                    summary.method.class_name,
                    summary.method.name,
                    summary.method.arity,
                )
            ]
            graph.set_node_property(
                node_id, "ACTION", summary.action.to_property()
            )

        # 3c. MAG slices
        for name in sorted(graph_dirty_new):
            cls = new_hierarchy.get(name)
            for method in cls.methods.values():
                method_key = (name, method.name, method.arity)
                method_node = graph.node(method_ids[method_key])
                linked: Set[int] = set()
                for parent in new_hierarchy.alias_parents(method):
                    parent_key = (
                        parent.class_name, parent.name, parent.arity
                    )
                    parent_id = method_ids.get(parent_key)
                    if parent_id is None:
                        raise IncrementalError(
                            f"alias parent {parent_key} has no method node"
                        )
                    if parent_id not in linked:
                        linked.add(parent_id)
                        touched.add(parent_key)
                        graph.create_relationship(
                            ALIAS, method_node, graph.node(parent_id)
                        )
                for super_name in new_hierarchy.supertypes(name):
                    if new_hierarchy.get(super_name) is not None:
                        continue
                    parent_key = (super_name, method.name, method.arity)
                    parent_id = method_ids.get(parent_key)
                    if parent_id is not None and parent_id not in linked:
                        linked.add(parent_id)
                        touched.add(parent_key)
                        graph.create_relationship(
                            ALIAS, method_node, graph.node(parent_id)
                        )

        # 4. boundary fixup: clean classes' ALIAS edges into phantom
        # method nodes created by this patch (the only clean-side edges
        # a cold build would have that the patch hasn't restored)
        if new_phantom_methods:
            wanted = set(new_phantom_methods)
            for cls in new_hierarchy.classes:
                if cls.name in graph_dirty_new:
                    continue
                phantom_supers = [
                    s
                    for s in new_hierarchy.supertypes(cls.name)
                    if new_hierarchy.get(s) is None
                ]
                if not phantom_supers:
                    continue
                for method in cls.methods.values():
                    for super_name in phantom_supers:
                        parent_key = (
                            super_name, method.name, method.arity
                        )
                        if parent_key not in wanted:
                            continue
                        child_id = method_ids[
                            (cls.name, method.name, method.arity)
                        ]
                        touched.add((cls.name, method.name, method.arity))
                        graph.create_relationship(
                            ALIAS,
                            graph.node(child_id),
                            graph.node(method_ids[parent_key]),
                        )

        # 5. jar-only moves: the class text is unchanged (JAR is not part
        # of the content key), only the node property needs patching
        for name, jar in sorted(jar_moved.items()):
            graph.set_node_property(class_ids[name], "JAR", jar)

        stats.nodes_created = graph.node_count - nodes_after_delete
        stats.rels_created = graph.relationship_count - rels_after_delete
        return touched

    # -- canonical renumber --------------------------------------------------

    def _canonical_orders(
        self, hierarchy: ClassHierarchy, summaries: Dict[str, MethodSummary]
    ) -> Tuple[List[Tuple], Dict[Tuple, int], List[Tuple]]:
        """Symbolically replay the cold builder's construction order.

        Returns ``(node_order, node_pos, rel_entries)`` where node keys
        are ``("C", name)`` / ``("M", class, name, arity)`` and each rel
        entry is ``(type, start_key, end_key, discriminator)`` — the
        ``SITE_INDEX`` for CALL edges, an occurrence counter otherwise
        (identically-propertied duplicates are interchangeable).
        """
        prune = self.prune_uncontrollable_calls
        node_order: List[Tuple] = []
        node_pos: Dict[Tuple, int] = {}
        rel_entries: List[Tuple] = []
        occurrence: Dict[Tuple, int] = {}

        def see_node(key: Tuple) -> None:
            if key not in node_pos:
                node_pos[key] = len(node_order)
                node_order.append(key)

        def emit_rel(
            rel_type: str, start: Tuple, end: Tuple, disc: Optional[Tuple] = None
        ) -> None:
            if disc is None:
                group = (rel_type, start, end)
                count = occurrence.get(group, 0)
                occurrence[group] = count + 1
                disc = ("occ", count)
            rel_entries.append((rel_type, start, end, disc))

        # ORG: sorted classes; node first, EXTEND/INTERFACE targets
        # created on first reference, then methods in declaration order
        for cls in sorted(hierarchy.classes, key=lambda c: c.name):
            class_key = ("C", cls.name)
            see_node(class_key)
            if cls.super_name:
                parent_key = ("C", cls.super_name)
                see_node(parent_key)
                emit_rel(EXTEND, class_key, parent_key)
            for iface in cls.interface_names:
                iface_key = ("C", iface)
                see_node(iface_key)
                emit_rel(INTERFACE, class_key, iface_key)
            for method in cls.methods.values():
                method_key = ("M", cls.name, method.name, method.arity)
                see_node(method_key)
                emit_rel(HAS, class_key, method_key)

        # PCG: sorted summary keys; phantom callee nodes (plus their HAS
        # edge and possibly-phantom owning class) on first demand
        for sig in sorted(summaries):
            summary = summaries[sig]
            caller_key = (
                "M",
                summary.method.class_name,
                summary.method.name,
                summary.method.arity,
            )
            for site in summary.call_sites:
                if site.pruned and prune:
                    continue
                if site.kind == "dynamic":
                    continue
                if site.resolved is not None:
                    callee_key = (
                        "M",
                        site.resolved.class_name,
                        site.resolved.name,
                        site.resolved.arity,
                    )
                else:
                    callee_key = (
                        "M", site.callee_class, site.callee_name, site.arity
                    )
                    if callee_key not in node_pos:
                        see_node(callee_key)
                        owner_key = ("C", site.callee_class)
                        see_node(owner_key)
                        emit_rel(HAS, owner_key, callee_key)
                emit_rel(
                    CALL, caller_key, callee_key, ("site", site.site_index)
                )

        # MAG: sorted classes, defined alias parents then phantom ones,
        # deduplicated per method occurrence
        for cls in sorted(hierarchy.classes, key=lambda c: c.name):
            for method in cls.methods.values():
                method_key = ("M", cls.name, method.name, method.arity)
                linked: Set[Tuple] = set()
                for parent in hierarchy.alias_parents(method):
                    parent_key = (
                        "M", parent.class_name, parent.name, parent.arity
                    )
                    if parent_key in linked:
                        continue
                    linked.add(parent_key)
                    emit_rel(ALIAS, method_key, parent_key)
                for super_name in hierarchy.supertypes(cls.name):
                    if hierarchy.get(super_name) is not None:
                        continue
                    parent_key = (
                        "M", super_name, method.name, method.arity
                    )
                    if parent_key in node_pos and parent_key not in linked:
                        linked.add(parent_key)
                        emit_rel(ALIAS, method_key, parent_key)

        return node_order, node_pos, rel_entries

    def _renumber(
        self, hierarchy: ClassHierarchy, summaries: Dict[str, MethodSummary]
    ) -> None:
        """Verify the patched graph is key-bijective with the symbolic
        cold replay, then remap every node/relationship id in place to
        the canonical (cold-build) numbering and rebuild the derived
        structures — after which the graph fingerprint equals a cold
        build's byte for byte."""
        graph = self.cpg.graph
        node_order, node_pos, rel_entries = self._canonical_orders(
            hierarchy, summaries
        )

        actual_by_key: Dict[Tuple, Node] = {}
        for node in graph._nodes.values():
            if node.has_label(CLASS_LABEL):
                key: Tuple = ("C", node.get("NAME"))
            else:
                key = (
                    "M",
                    node.get("CLASSNAME"),
                    node.get("NAME"),
                    node.get("ARITY"),
                )
            if key in actual_by_key:
                raise IncrementalError(f"duplicate node for {key}")
            actual_by_key[key] = node
        if len(actual_by_key) != len(node_order) or any(
            key not in actual_by_key for key in node_pos
        ):
            missing = sorted(
                key for key in node_pos if key not in actual_by_key
            )[:3]
            extra = sorted(
                key for key in actual_by_key if key not in node_pos
            )[:3]
            raise IncrementalError(
                "patched node set diverges from the cold replay "
                f"(missing={missing!r}, extra={extra!r})"
            )

        want: Dict[Tuple, int] = {}
        for position, entry in enumerate(rel_entries):
            if entry in want:
                raise IncrementalError(
                    f"ambiguous canonical relationship {entry!r}"
                )
            want[entry] = position
        if len(rel_entries) != graph.relationship_count:
            raise IncrementalError(
                f"patched graph has {graph.relationship_count} edges, "
                f"cold replay has {len(rel_entries)}"
            )

        key_of_id = {node.id: key for key, node in actual_by_key.items()}
        rel_new_pos: Dict[int, int] = {}
        groups: Dict[Tuple, List[Relationship]] = {}
        for rel in graph._rels.values():
            start_key = key_of_id[rel.start_id]
            end_key = key_of_id[rel.end_id]
            if rel.type == CALL:
                entry = (
                    CALL, start_key, end_key, ("site", rel.get("SITE_INDEX"))
                )
                position = want.get(entry)
                if position is None:
                    raise IncrementalError(
                        f"patched CALL edge not in cold replay: {entry!r}"
                    )
                rel_new_pos[rel.id] = position
            else:
                groups.setdefault(
                    (rel.type, start_key, end_key), []
                ).append(rel)
        for (rel_type, start_key, end_key), members in groups.items():
            members.sort(key=lambda r: r.id)
            for count, rel in enumerate(members):
                entry = (rel_type, start_key, end_key, ("occ", count))
                position = want.get(entry)
                if position is None:
                    raise IncrementalError(
                        f"patched {rel_type} edge not in cold replay: "
                        f"{(start_key, end_key)!r}"
                    )
                rel_new_pos[rel.id] = position
        if len(rel_new_pos) != len(rel_entries) or len(
            set(rel_new_pos.values())
        ) != len(rel_new_pos):
            raise IncrementalError(
                "patched edge multiset is not bijective with the cold replay"
            )

        # remap: relationships first (they reference the old node ids)
        old_to_new = {
            node.id: node_pos[key] for key, node in actual_by_key.items()
        }
        by_position: List[Optional[Relationship]] = [None] * len(rel_entries)
        for rel in graph._rels.values():
            position = rel_new_pos[rel.id]
            rel.id = position
            rel.start_id = old_to_new[rel.start_id]
            rel.end_id = old_to_new[rel.end_id]
            by_position[position] = rel
        new_nodes: Dict[int, Node] = {}
        for position, key in enumerate(node_order):
            node = actual_by_key[key]
            node.id = position
            new_nodes[position] = node
        graph._nodes = new_nodes
        graph._rels = {
            position: rel for position, rel in enumerate(by_position)
        }

        # rebuild adjacency/counters in canonical order — identical to
        # what create_node/create_relationship would have produced
        node_count = len(node_order)
        graph._out = {nid: [] for nid in range(node_count)}
        graph._in = {nid: [] for nid in range(node_count)}
        graph._out_by_type = {nid: {} for nid in range(node_count)}
        graph._in_by_type = {nid: {} for nid in range(node_count)}
        type_counts: Dict[str, int] = {}
        for rel in by_position:
            graph._out[rel.start_id].append(rel.id)
            graph._in[rel.end_id].append(rel.id)
            graph._out_by_type[rel.start_id].setdefault(
                rel.type, []
            ).append(rel.id)
            graph._in_by_type[rel.end_id].setdefault(
                rel.type, []
            ).append(rel.id)
            type_counts[rel.type] = type_counts.get(rel.type, 0) + 1
        graph._rel_type_counts = type_counts
        graph._rel_prop_indexes = {
            key: {
                rel.id for rel in by_position if key in rel.properties
            }
            for key in graph._rel_prop_indexes
        }
        fresh = IndexManager()
        # declaration order matters for the fingerprint: a cold build
        # declares CPG_INDEX_ORDER first, so normalise to that sequence
        # (a loaded snapshot may carry the indexes in storage order),
        # then keep any extra indexes in the old manager's order
        declared = set(graph.indexes._property_indexes)
        for label, key in CPG_INDEX_ORDER:
            if (label, key) in declared:
                fresh.create_index(label, key)
        for label, key in graph.indexes._property_indexes:
            if (label, key) not in set(CPG_INDEX_ORDER):
                fresh.create_index(label, key)
        for position in range(node_count):
            fresh.index_node(new_nodes[position])
        graph.indexes = fresh
        graph._next_node_id = node_count
        graph._next_rel_id = len(rel_entries)

        # the session's key -> id maps now carry the canonical ids
        self._class_node_ids = {
            key[1]: node.id
            for key, node in actual_by_key.items()
            if key[0] == "C"
        }
        self._method_node_ids = {
            (key[1], key[2], key[3]): node.id
            for key, node in actual_by_key.items()
            if key[0] == "M"
        }

    def _recompute_statistics(
        self,
        class_list: List[JavaClass],
        hierarchy: ClassHierarchy,
        merged: Dict[str, MethodSummary],
    ) -> None:
        graph = self.cpg.graph
        statistics = self.cpg.statistics
        statistics.jar_count = len(
            {c.jar_name for c in class_list if c.jar_name}
        )
        statistics.class_node_count = graph.indexes.label_count(CLASS_LABEL)
        statistics.method_node_count = graph.indexes.label_count(METHOD_LABEL)
        statistics.relationship_edge_count = graph.relationship_count
        statistics.pruned_call_sites = (
            sum(
                1
                for summary in merged.values()
                for site in summary.call_sites
                if site.pruned
            )
            if self.prune_uncontrollable_calls
            else 0
        )

    # -- dirty-cone re-search -----------------------------------------------

    def _forward_cone(self, seed_ids: Iterable[int]) -> Set[int]:
        """Every node with any CALL-forward/ALIAS path from a seed —
        the reversal of the backward search step, so a sink outside
        this set cannot have a touched node anywhere in its search
        tree (the same argument as the path finder's source-reachable
        pruning, run from the dirty side)."""
        graph = self.cpg.graph
        follow_alias = self.search.follow_alias
        seen: Set[int] = set()
        queue: deque = deque()
        for node_id in seed_ids:
            if node_id not in seen:
                seen.add(node_id)
                queue.append(node_id)
        csr = getattr(graph, "csr_neighbors", None)
        if csr is not None:
            hops = [csr(CALL, False)]
            if follow_alias:
                hops.append(csr(ALIAS, False))
                hops.append(csr(ALIAS, True))
            while queue:
                node_id = queue.popleft()
                for indptr, neighbours in hops:
                    for nbr in neighbours[
                        indptr[node_id] : indptr[node_id + 1]
                    ]:
                        if nbr not in seen:
                            seen.add(nbr)
                            queue.append(nbr)
            return seen
        while queue:
            node_id = queue.popleft()
            for rel in graph.out_relationships(node_id, CALL):
                if rel.end_id not in seen:
                    seen.add(rel.end_id)
                    queue.append(rel.end_id)
            if not follow_alias:
                continue
            for rel in graph.out_relationships(node_id, ALIAS):
                if rel.end_id not in seen:
                    seen.add(rel.end_id)
                    queue.append(rel.end_id)
            for rel in graph.in_relationships(node_id, ALIAS):
                if rel.start_id not in seen:
                    seen.add(rel.start_id)
                    queue.append(rel.start_id)
        return seen

    def _research_and_splice(
        self, touched: Set[MethodKey], stats: IncrementalStatistics
    ) -> None:
        seeds = [
            node_id
            for node_id in (
                self._method_node_ids.get(key) for key in touched
            )
            if node_id is not None
        ]
        cone = self._forward_cone(seeds)
        sinks = self.cpg.sink_nodes()
        research: List[Node] = []
        for sink in sinks:
            if sink.id in cone or self._sink_key(sink) not in self._per_sink:
                research.append(sink)
        fresh: Dict[MethodKey, List[GadgetChain]] = {}
        if research:
            finder = self._finder()
            buckets = finder.find_chains_per_sink(
                research, source_filter=self.search.source_filter
            )
            self.last_search_stats = finder.last_search_stats
            fresh = {
                self._sink_key(sink): bucket
                for sink, bucket in zip(research, buckets)
            }
        per_sink: Dict[MethodKey, List[GadgetChain]] = {}
        ordered: List[List[GadgetChain]] = []
        for sink in sinks:
            key = self._sink_key(sink)
            bucket = fresh[key] if key in fresh else self._per_sink[key]
            per_sink[key] = bucket
            ordered.append(bucket)
        self._per_sink = per_sink
        self.chains = dedupe_chains(
            [chain for bucket in ordered for chain in bucket]
        )
        stats.sinks_total = len(sinks)
        stats.sinks_researched = len(research)
        stats.sinks_reused = len(sinks) - len(research)

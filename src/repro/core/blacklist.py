"""Deserialization blacklist generation and enforcement (§IV-E, RQ4).

"Security researchers in these teams can use Tabby to find potential
gadget chains in their projects and refine the blacklist with classes
from the gadget chains. Xstream and Apache Dubbo refined their
blacklists based on the gadget chains we submitted."

This module closes that loop:

* :func:`derive_blacklist` turns a set of (verified) gadget chains into
  the minimal set of *gadget classes* to forbid — the serializable
  classes an attacker must materialise for any of the chains to fire
  (JDK infrastructure like ``HashMap`` is kept deserializable: blocking
  it would break the world, and blocking the gadget below it suffices);
* :class:`DeserializationBlacklist` is the runtime filter a framework
  would install (exact names, packages, and subtype entries, like
  XStream's security framework);
* :func:`apply_blacklist` re-runs the analysis as if the filter were
  installed — blacklisted classes can no longer head or ride a chain —
  so the remediation can be *proven* to kill the reported chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.chains import GadgetChain
from repro.core.sources import SourceCatalog
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass

__all__ = [
    "DeserializationBlacklist",
    "derive_blacklist",
    "apply_blacklist",
    "PROTECTED_RUNTIME_PACKAGES",
]

#: packages never blacklisted: forbidding them would break ordinary
#: deserialization, and blocking the gadget riding on them suffices
PROTECTED_RUNTIME_PACKAGES = ("java.lang", "java.util", "java.io")


@dataclass(frozen=True)
class DeserializationBlacklist:
    """A deserialization filter: exact class names, package prefixes,
    and subtype roots (XStream's ``denyTypes``/``denyTypeHierarchy``)."""

    classes: frozenset = frozenset()
    packages: Tuple[str, ...] = ()
    subtype_roots: Tuple[str, ...] = ()

    def blocks(self, class_name: str, hierarchy: Optional[ClassHierarchy] = None) -> bool:
        """Whether deserialising an instance of ``class_name`` is denied."""
        if class_name in self.classes:
            return True
        if any(class_name.startswith(pkg + ".") for pkg in self.packages):
            return True
        if hierarchy is not None:
            for root in self.subtype_roots:
                if hierarchy.is_subtype_of(class_name, root):
                    return True
        return False

    def merged_with(self, other: "DeserializationBlacklist") -> "DeserializationBlacklist":
        return DeserializationBlacklist(
            classes=self.classes | other.classes,
            packages=tuple(dict.fromkeys(self.packages + other.packages)),
            subtype_roots=tuple(
                dict.fromkeys(self.subtype_roots + other.subtype_roots)
            ),
        )

    def entries(self) -> List[str]:
        """Human-readable filter entries, sorted."""
        out = [f"deny-class {name}" for name in sorted(self.classes)]
        out += [f"deny-package {pkg}.*" for pkg in sorted(self.packages)]
        out += [f"deny-hierarchy {root}+" for root in sorted(self.subtype_roots)]
        return out

    def __len__(self) -> int:
        return len(self.classes) + len(self.packages) + len(self.subtype_roots)


def _is_protected(class_name: str) -> bool:
    return any(
        class_name == pkg or class_name.startswith(pkg + ".")
        for pkg in PROTECTED_RUNTIME_PACKAGES
    )


def derive_blacklist(
    chains: Iterable[GadgetChain],
    hierarchy: ClassHierarchy,
) -> DeserializationBlacklist:
    """The class entries that neutralise every given chain.

    For each chain, the candidate entries are its *serializable gadget
    classes* outside the protected runtime packages — the objects the
    attacker has to smuggle through the deserializer.  Greedy set cover
    keeps the blacklist minimal: classes appearing on many chains (the
    InvokerTransformer situation) are picked first.
    """
    chain_candidates: List[Set[str]] = []
    for chain in chains:
        candidates = {
            cls
            for cls in chain.classes()
            if not _is_protected(cls) and hierarchy.is_serializable(cls)
        }
        if candidates:
            chain_candidates.append(candidates)

    chosen: Set[str] = set()
    remaining = [c for c in chain_candidates]
    while remaining:
        counts: dict = {}
        for candidates in remaining:
            for cls in candidates:
                counts[cls] = counts.get(cls, 0) + 1
        best = max(sorted(counts), key=lambda cls: counts[cls])
        chosen.add(best)
        remaining = [c for c in remaining if best not in c]
    return DeserializationBlacklist(classes=frozenset(chosen))


def apply_blacklist(
    classes: Sequence[JavaClass],
    blacklist: DeserializationBlacklist,
    sources: Optional[SourceCatalog] = None,
) -> List[GadgetChain]:
    """Re-run chain detection as if the filter were installed.

    A blacklisted class can no longer be materialised by the
    deserializer, so (a) its deserialization callbacks are no longer
    sources, and (b) no chain may require an attacker-supplied instance
    of it.  Returns the chains that *survive* — the residual risk.
    """
    from repro.core.api import Tabby  # local import to avoid a cycle

    hierarchy = ClassHierarchy(classes)
    catalog = sources if sources is not None else SourceCatalog.extended()
    tabby = Tabby(sources=catalog).add_classes(classes)
    survivors: List[GadgetChain] = []
    for chain in tabby.find_gadget_chains():
        blocked = any(
            blacklist.blocks(cls, hierarchy)
            for cls in chain.classes()
            if hierarchy.is_serializable(cls)
        )
        if not blocked:
            survivors.append(chain)
    return survivors

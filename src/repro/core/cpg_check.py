"""Structural verification of a built code property graph.

The CPG construction pipeline (:mod:`repro.core.cpg`) promises a set of
invariants that downstream consumers — the path finder, the bench
harness, cached/parallel rebuilds — silently rely on:

* every ``CALL`` edge's ``POLLUTED_POSITION`` vector has exactly
  ``callee arity + 1`` entries (receiver slot + one per parameter,
  paper Formula 2);
* every ``ALIAS`` edge connects a genuine override pair per the class
  hierarchy: same method name and arity, with the edge running from a
  subtype's method to a supertype's (Formula 1);
* every sink node carries its ``TRIGGER_CONDITION`` and ``SINK_TYPE``;
* no relationship dangles (both endpoints exist in the graph);
* every method node is attached to its class via a ``HAS`` edge whose
  class node names the method's ``CLASSNAME`` (phantom callee nodes,
  which have no defined class, are exempt);
* refinement annotations are well-formed: ``RTA_DEAD`` appears only on
  ``CALL``/``ALIAS`` edges, only with the value ``True``, a dead CALL
  edge is a receiver dispatch (``KIND`` virtual/interface), and a dead
  ALIAS edge connects a valid override pair — the corrupted-CPG guard
  for the edge annotations written by :mod:`repro.analysis.rta`;
* every maintained secondary structure — adjacency lists, typed
  buckets, relationship-type counters, presence indexes, label and
  property indexes — equals a from-scratch recomputation over the
  node/edge sets (:meth:`PropertyGraph.check_integrity`), which guards
  the in-place deletion paths used by refinement edge pruning and the
  incremental CPG patch.

``verify_cpg`` re-derives each invariant from the graph itself, so a
bug in any build phase (or a corrupted cache) surfaces as a typed
:class:`CPGCheckIssue` instead of a mysterious Table IX diff.  The CLI
exposes it as ``--check-cpg`` on ``analyze``/``chains``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.cpg import ALIAS, CALL, CLASS_LABEL, CPG, HAS, METHOD_LABEL, RTA_DEAD

__all__ = ["CPGCheckIssue", "verify_cpg"]


@dataclass(frozen=True)
class CPGCheckIssue:
    """One violated CPG invariant."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"

    def to_dict(self) -> Dict[str, str]:
        return {"check": self.check, "message": self.message}


def verify_cpg(cpg: CPG) -> List[CPGCheckIssue]:
    """Check every structural invariant; returns all violations."""
    issues: List[CPGCheckIssue] = []
    issues.extend(_check_dangling(cpg))
    issues.extend(_check_call_pp(cpg))
    issues.extend(_check_alias_overrides(cpg))
    issues.extend(_check_sink_metadata(cpg))
    issues.extend(_check_method_ownership(cpg))
    issues.extend(_check_refinement_annotations(cpg))
    issues.extend(_check_storage_integrity(cpg))
    return issues


def _check_storage_integrity(cpg: CPG) -> List[CPGCheckIssue]:
    """Secondary-structure drift: adjacency lists, typed buckets,
    rel-type counters, presence indexes and label/property indexes must
    equal a recomputation from the node/edge sets.  Construction alone
    cannot break these; the in-place deletion paths (refinement edge
    pruning, the incremental CPG patch) can — so ``--check-cpg`` after a
    patch catches counter drift at the source."""
    check = getattr(cpg.graph, "check_integrity", None)
    if check is None:
        return []  # read-only ArrayGraph view: structures are derived on load
    return [
        CPGCheckIssue("storage-integrity", message) for message in check()
    ]


def _describe(cpg: CPG, node_id: int) -> str:
    if not cpg.graph.has_node(node_id):
        return f"<missing node {node_id}>"
    node = cpg.graph.node(node_id)
    signature = node.get("SIGNATURE")
    if signature:
        return str(signature)
    return str(node.get("NAME", f"<node {node_id}>"))


def _check_dangling(cpg: CPG) -> List[CPGCheckIssue]:
    issues = []
    for rel in cpg.graph.relationships():
        for endpoint in (rel.start_id, rel.end_id):
            if not cpg.graph.has_node(endpoint):
                issues.append(
                    CPGCheckIssue(
                        "dangling-ref",
                        f"{rel.type} edge {rel.id} references missing node "
                        f"{endpoint}",
                    )
                )
    return issues


def _check_call_pp(cpg: CPG) -> List[CPGCheckIssue]:
    issues = []
    for rel in cpg.graph.relationships(CALL):
        if not cpg.graph.has_node(rel.end_id):
            continue  # reported by dangling-ref
        callee = cpg.graph.node(rel.end_id)
        pp = rel.get("POLLUTED_POSITION")
        if pp is None:
            issues.append(
                CPGCheckIssue(
                    "call-pp-arity",
                    f"CALL edge into {_describe(cpg, rel.end_id)} has no "
                    "POLLUTED_POSITION",
                )
            )
            continue
        arity = callee.get("ARITY")
        if arity is None or len(pp) != arity + 1:
            issues.append(
                CPGCheckIssue(
                    "call-pp-arity",
                    f"CALL edge into {_describe(cpg, rel.end_id)} carries "
                    f"{len(pp)} PP entries for arity {arity} "
                    "(expected arity + 1)",
                )
            )
    return issues


def _check_alias_overrides(cpg: CPG) -> List[CPGCheckIssue]:
    issues = []
    hierarchy = cpg.hierarchy
    for rel in cpg.graph.relationships(ALIAS):
        if not (cpg.graph.has_node(rel.start_id) and cpg.graph.has_node(rel.end_id)):
            continue  # reported by dangling-ref
        child = cpg.graph.node(rel.start_id)
        parent = cpg.graph.node(rel.end_id)
        where = (
            f"ALIAS {_describe(cpg, rel.start_id)} -> "
            f"{_describe(cpg, rel.end_id)}"
        )
        if child.get("NAME") != parent.get("NAME") or child.get(
            "ARITY"
        ) != parent.get("ARITY"):
            issues.append(
                CPGCheckIssue(
                    "alias-override",
                    f"{where}: endpoints disagree on name/arity",
                )
            )
            continue
        child_cls = child.get("CLASSNAME")
        parent_cls = parent.get("CLASSNAME")
        if child_cls is None or parent_cls is None:
            issues.append(
                CPGCheckIssue(
                    "alias-override", f"{where}: endpoint lacks a CLASSNAME"
                )
            )
            continue
        # The parent may be a phantom class; supertypes() tracks phantom
        # names, so subtype inclusion covers both defined and phantom
        # parents.
        if parent_cls not in hierarchy.supertypes(child_cls):
            issues.append(
                CPGCheckIssue(
                    "alias-override",
                    f"{where}: {parent_cls} is not a supertype of {child_cls}",
                )
            )
    return issues


def _check_sink_metadata(cpg: CPG) -> List[CPGCheckIssue]:
    issues = []
    for node in cpg.sink_nodes():
        signature = node.get("SIGNATURE", node.get("NAME"))
        tc = node.get("TRIGGER_CONDITION")
        if not tc:
            issues.append(
                CPGCheckIssue(
                    "sink-metadata",
                    f"sink {signature} carries no TRIGGER_CONDITION",
                )
            )
        if not node.get("SINK_TYPE"):
            issues.append(
                CPGCheckIssue(
                    "sink-metadata", f"sink {signature} carries no SINK_TYPE"
                )
            )
    return issues


def _check_refinement_annotations(cpg: CPG) -> List[CPGCheckIssue]:
    """Guard the ``RTA_DEAD`` edge annotations (absence = live edge)."""
    issues = []
    hierarchy = cpg.hierarchy
    for rel in cpg.graph.relationships_with_property(RTA_DEAD):
        where = (
            f"{rel.type} {_describe(cpg, rel.start_id)} -> "
            f"{_describe(cpg, rel.end_id)}"
        )
        if rel.type not in (CALL, ALIAS):
            issues.append(
                CPGCheckIssue(
                    "refine-annotation",
                    f"{where}: RTA_DEAD on a {rel.type} edge "
                    "(only CALL/ALIAS dispatch edges can be RTA-dead)",
                )
            )
            continue
        if rel.get(RTA_DEAD) is not True:
            issues.append(
                CPGCheckIssue(
                    "refine-annotation",
                    f"{where}: RTA_DEAD must be boolean True when present, "
                    f"got {rel.get(RTA_DEAD)!r}",
                )
            )
            continue
        if rel.type == CALL:
            if rel.get("KIND") not in ("virtual", "interface"):
                issues.append(
                    CPGCheckIssue(
                        "refine-annotation",
                        f"{where}: RTA-dead CALL edge has KIND "
                        f"{rel.get('KIND')!r} (only receiver dispatch can "
                        "be type-unreachable)",
                    )
                )
            continue
        if not (cpg.graph.has_node(rel.start_id) and cpg.graph.has_node(rel.end_id)):
            continue  # reported by dangling-ref
        child_cls = cpg.graph.node(rel.start_id).get("CLASSNAME")
        parent_cls = cpg.graph.node(rel.end_id).get("CLASSNAME")
        if child_cls is None or parent_cls is None or parent_cls not in hierarchy.supertypes(child_cls):
            issues.append(
                CPGCheckIssue(
                    "refine-annotation",
                    f"{where}: RTA-dead ALIAS edge does not connect a "
                    "subtype override to its supertype declaration",
                )
            )
    return issues


def _check_method_ownership(cpg: CPG) -> List[CPGCheckIssue]:
    issues = []
    for node in cpg.graph.nodes(METHOD_LABEL):
        if node.get("IS_PHANTOM"):
            continue
        owners = [
            cpg.graph.node(rel.start_id)
            for rel in cpg.graph.in_relationships(node, HAS)
            if cpg.graph.has_node(rel.start_id)
        ]
        class_owners = [o for o in owners if o.has_label(CLASS_LABEL)]
        if len(class_owners) != 1:
            issues.append(
                CPGCheckIssue(
                    "method-ownership",
                    f"method {node.get('SIGNATURE')} has {len(class_owners)} "
                    "HAS owners (expected exactly 1)",
                )
            )
        elif class_owners[0].get("NAME") != node.get("CLASSNAME"):
            issues.append(
                CPGCheckIssue(
                    "method-ownership",
                    f"method {node.get('SIGNATURE')} is owned by "
                    f"{class_owners[0].get('NAME')} but claims CLASSNAME "
                    f"{node.get('CLASSNAME')}",
                )
            )
    return issues

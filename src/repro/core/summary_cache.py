"""Persistent method-summary cache for CPG construction.

Algorithm 1 (the controllability analysis) is the dominant cost of a
CPG build, and its result for a class is a pure function of

1. the class's own code (its jasm text),
2. the code of every class its analysis can transitively consult —
   supertypes and statically referenced callees (the *dependency
   closure*), and
3. nothing else.

This module persists summaries per class, keyed by a content hash over
exactly those inputs plus a catalog-version token (sink/source catalog
revisions) and a format version.  Re-analysing overlapping classpaths —
the per-component workflow of ``find_chains`` and ``bench_table_ix`` —
then skips Algorithm 1 entirely for every unchanged class.

The cache is safe by construction:

* any load failure (missing file, corrupt JSON, schema drift, stale
  method references) degrades to a cache miss, never an error;
* summaries flagged :attr:`ControllabilityAnalysis.cycle_tainted` are
  never persisted: their values involve cycle breaking, and seeding
  them into a later build could perturb the deterministic re-analysis
  of their cycle partners;
* writes are atomic (temp file + rename), so a crashed build leaves at
  worst a stale temp file, not a truncated entry.

The portable record codec (:func:`encode_summary` /
:func:`decode_summary`) is shared with :mod:`repro.core.parallel`,
which ships the same records across process boundaries.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import sys
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.actions import Action
from repro.core.controllability import CallSite, MethodSummary
from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod

__all__ = [
    "CACHE_FORMAT_VERSION",
    "encode_summary",
    "decode_summary",
    "catalog_token",
    "class_content_key",
    "referenced_class_names",
    "dependency_closures",
    "SummaryCache",
    "SummaryCacheStats",
]

_LOG = logging.getLogger("repro.core.summary_cache")

#: bump when the record schema or the analysis semantics change
CACHE_FORMAT_VERSION = 1

#: strings longer than this are left as-is on read-back (interned
#: strings live for the rest of the process)
_INTERN_MAX = 512


def _intern_tree(value):
    """Intern the strings of a JSON-shaped record in place-ish.

    ``json.loads`` memoises object *keys* within one document but
    allocates a fresh string per value occurrence and shares nothing
    across cache entries.  Warm builds read one record file per class,
    so the same class names, sub-signatures and action atoms come back
    thousands of times; interning them on read-back makes the warm
    summary phase share one object per distinct string — the same
    dedup the v2 graph snapshot's string table performs.
    """
    kind = type(value)
    if kind is str:
        return sys.intern(value) if len(value) <= _INTERN_MAX else value
    if kind is list:
        return [_intern_tree(item) for item in value]
    if kind is dict:
        return {_intern_tree(k): _intern_tree(v) for k, v in value.items()}
    return value


# ---------------------------------------------------------------------------
# Portable summary records
# ---------------------------------------------------------------------------


def encode_summary(summary: MethodSummary) -> Dict[str, object]:
    """A JSON-serialisable record reproducing ``summary`` exactly."""
    sites = []
    for site in summary.call_sites:
        resolved = None
        if site.resolved is not None:
            resolved = [
                site.resolved.class_name,
                site.resolved.signature.sub_signature,
            ]
        sites.append(
            {
                "kind": site.kind,
                "callee_class": site.callee_class,
                "callee_name": site.callee_name,
                "arity": site.arity,
                "pp": list(site.polluted_position),
                "pruned": site.pruned,
                "site_index": site.site_index,
                "resolved": resolved,
            }
        )
    method = summary.method
    return {
        "class": method.class_name,
        "subsig": method.signature.sub_signature,
        "action": summary.action.to_property(),
        "sites": sites,
    }


def _lookup_method(
    hierarchy: ClassHierarchy, class_name: str, sub_signature: str
) -> JavaMethod:
    cls = hierarchy.get(class_name)
    if cls is None:
        raise KeyError(f"class not in hierarchy: {class_name}")
    method = cls.method(sub_signature)
    if method is None:
        raise KeyError(f"method not in hierarchy: <{class_name}: {sub_signature}>")
    return method


def decode_summary(
    record: Dict[str, object], hierarchy: ClassHierarchy
) -> MethodSummary:
    """Rehydrate a record against ``hierarchy``.

    Raises ``KeyError``/``TypeError``/``ValueError`` when the record
    does not match the hierarchy or the schema — callers treat any of
    those as a cache miss.
    """
    method = _lookup_method(hierarchy, record["class"], record["subsig"])
    summary = MethodSummary(method, Action(dict(record["action"])))
    for raw in record["sites"]:
        resolved = None
        if raw["resolved"] is not None:
            res_class, res_subsig = raw["resolved"]
            resolved = _lookup_method(hierarchy, res_class, res_subsig)
        summary.call_sites.append(
            CallSite(
                caller=method,
                kind=str(raw["kind"]),
                callee_class=str(raw["callee_class"]),
                callee_name=str(raw["callee_name"]),
                arity=int(raw["arity"]),
                polluted_position=[int(w) for w in raw["pp"]],
                resolved=resolved,
                pruned=bool(raw["pruned"]),
                site_index=int(raw["site_index"]),
            )
        )
    return summary


# ---------------------------------------------------------------------------
# Cache keying
# ---------------------------------------------------------------------------


def catalog_token(
    sinks: Optional[SinkCatalog] = None, sources: Optional[SourceCatalog] = None
) -> str:
    """A stable digest of the sink/source catalogs in effect.

    Summaries do not read the catalogs today, but keying on them keeps
    the cache conservative across catalog revisions (per the paper,
    sink knowledge evolves independently of the analysed code)."""
    payload: List[object] = []
    if sinks is not None:
        payload.append(
            sorted(
                (s.class_name, s.method_name, s.category, list(s.trigger_condition))
                for s in sinks
            )
        )
    if sources is not None:
        payload.append([sorted(sources.names), sources.require_serializable])
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def _names_in_value(value: ir.Value, out: Set[str]) -> None:
    if isinstance(value, ir.StaticFieldRef):
        out.add(value.class_name)
    elif isinstance(value, ir.ClassConst):
        out.add(value.class_name)
    elif isinstance(value, ir.NewExpr):
        out.add(value.class_name)
    elif isinstance(value, ir.NewArrayExpr):
        out.add(value.element_type.name.rstrip("[]"))
        _names_in_value(value.size, out)
    elif isinstance(value, ir.CastExpr):
        out.add(value.target_type.name.rstrip("[]"))
        _names_in_value(value.op, out)
    elif isinstance(value, ir.InstanceOfExpr):
        out.add(value.check_type.name.rstrip("[]"))
        _names_in_value(value.op, out)
    elif isinstance(value, ir.BinOpExpr):
        _names_in_value(value.left, out)
        _names_in_value(value.right, out)
    elif isinstance(value, ir.InvokeExpr):
        out.add(value.class_name)
        if value.base is not None:
            _names_in_value(value.base, out)
        for arg in value.args:
            _names_in_value(arg, out)
    elif isinstance(value, ir.ArrayRef):
        _names_in_value(value.index, out)


def referenced_class_names(cls: JavaClass) -> Set[str]:
    """Every class name the analysis of ``cls`` may consult: supertypes,
    member types, and all names appearing in method bodies."""
    out: Set[str] = set()
    if cls.super_name:
        out.add(cls.super_name)
    out.update(cls.interface_names)
    for field in cls.fields.values():
        out.add(field.type.name.rstrip("[]"))
    for method in cls.methods.values():
        for ptype in method.param_types:
            out.add(ptype.name.rstrip("[]"))
        out.add(method.return_type.name.rstrip("[]"))
        for stmt in method.body:
            if isinstance(stmt, ir.AssignStmt):
                _names_in_value(stmt.target, out)
                _names_in_value(stmt.rhs, out)
            elif isinstance(stmt, ir.InvokeStmt):
                _names_in_value(stmt.expr, out)
            elif isinstance(stmt, ir.ReturnStmt):
                if stmt.value is not None:
                    _names_in_value(stmt.value, out)
            elif isinstance(stmt, ir.IfStmt):
                _names_in_value(stmt.cond, out)
            elif isinstance(stmt, ir.SwitchStmt):
                _names_in_value(stmt.key, out)
            elif isinstance(stmt, ir.ThrowStmt):
                _names_in_value(stmt.value, out)
    out.discard(cls.name)
    return out


def class_content_key(
    class_name: str,
    class_texts: Dict[str, str],
    closure: Sequence[str],
    catalog_token: str = "",
) -> str:
    """Content hash over a class's jasm text plus the jasm of its whole
    dependency closure, namespaced by the catalog token and the cache
    format version.

    This is the summary identity used by :class:`SummaryCache` *and* by
    the incremental analyzer's dirty-set computation
    (:mod:`repro.core.incremental`): two versions of a class with equal
    keys are guaranteed to produce identical summaries, and therefore
    identical ORG/PCG/MAG graph slices.
    """
    h = hashlib.sha256()
    h.update(f"v{CACHE_FORMAT_VERSION}|{catalog_token}|".encode("utf-8"))
    h.update(class_name.encode("utf-8"))
    for dep in sorted(closure):
        h.update(b"\x00")
        h.update(dep.encode("utf-8"))
        h.update(b"\x01")
        h.update(class_texts[dep].encode("utf-8"))
    return h.hexdigest()


def dependency_closures(hierarchy: ClassHierarchy) -> Dict[str, List[str]]:
    """For each defined class, the sorted set of defined classes its
    analysis can transitively consult (including itself)."""
    refs: Dict[str, List[str]] = {}
    for cls in hierarchy.classes:
        refs[cls.name] = sorted(
            name for name in referenced_class_names(cls) if name in hierarchy
        )
    closures: Dict[str, List[str]] = {}
    for name in refs:
        seen = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for dep in refs.get(current, ()):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        closures[name] = sorted(seen)
    return closures


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------


class SummaryCacheStats:
    """Hit/miss/corruption counters for one build."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stored = 0
        self.skipped_tainted = 0
        self.invalidated = 0
        self.evicted = 0

    def as_row(self) -> Dict[str, int]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_corrupt": self.corrupt,
            "cache_stored": self.stored,
            "cache_skipped_tainted": self.skipped_tainted,
            "cache_invalidated": self.invalidated,
            "cache_evicted": self.evicted,
        }

    def __repr__(self) -> str:
        return (
            f"<SummaryCacheStats hits={self.hits} misses={self.misses} "
            f"corrupt={self.corrupt} stored={self.stored}>"
        )


class SummaryCache:
    """Per-class summary records on disk, under ``cache_dir``.

    ``max_mb`` caps the total size of the entry files: after every
    store, the least-recently-used entries (by file mtime — loads touch
    the file) are evicted until the directory fits.  ``None`` (the
    default) keeps the cache unbounded, matching the historical
    behaviour.
    """

    def __init__(
        self,
        cache_dir: str,
        catalog_token: str = "",
        max_mb: Optional[float] = None,
    ):
        if max_mb is not None and max_mb <= 0:
            raise ValueError("max_mb must be positive (or None for unbounded)")
        self.cache_dir = cache_dir
        self.catalog_token = catalog_token
        self.max_mb = max_mb
        self.stats = SummaryCacheStats()
        os.makedirs(cache_dir, exist_ok=True)

    # -- keys -------------------------------------------------------------

    def class_key(
        self,
        class_name: str,
        class_texts: Dict[str, str],
        closure: Sequence[str],
    ) -> str:
        """Content hash over the class's jasm text and the jasm of its
        whole dependency closure (so a change anywhere the analysis can
        look invalidates the entry)."""
        return class_content_key(
            class_name, class_texts, closure, self.catalog_token
        )

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    # -- load/store -------------------------------------------------------

    def load(self, key: str, class_name: str) -> Optional[List[Dict[str, object]]]:
        """The stored records for ``key``, or None on any failure."""
        path = self._path(key)
        if not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not an object")
            if payload.get("version") != CACHE_FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            if payload.get("class") != class_name:
                raise ValueError("cache entry names a different class")
            records = payload["records"]
            if not isinstance(records, list):
                raise ValueError("cache records must be a list")
            for record in records:
                if not isinstance(record, dict) or "subsig" not in record:
                    raise ValueError("malformed summary record")
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            _LOG.warning(
                "unreadable summary cache entry treated as miss: "
                "class=%s key=%s path=%s error=%s: %s",
                class_name,
                key,
                path,
                type(exc).__name__,
                exc,
            )
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            # LRU touch: eviction orders entries by mtime
            os.utime(path)
        except OSError:
            pass
        return _intern_tree(records)

    def store(
        self, key: str, class_name: str, records: List[Dict[str, object]]
    ) -> None:
        """Atomically persist ``records`` under ``key``."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "class": class_name,
            "records": records,
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stored += 1
        if self.max_mb is not None:
            self._enforce_size_cap(keep=key)

    # -- invalidation / eviction ------------------------------------------

    def invalidate(self, class_hashes: Iterable[str]) -> int:
        """Drop the entries stored under the given content keys.

        Used by the incremental analyzer when a class's dependency
        closure changes: the superseded keys can never be looked up
        again (lookups always use current-content keys), so dropping
        them reclaims space immediately instead of waiting for LRU
        eviction.  Returns the number of entries actually removed.
        """
        removed = 0
        for key in class_hashes:
            try:
                os.unlink(self._path(key))
            except OSError:
                continue
            removed += 1
        self.stats.invalidated += removed
        return removed

    def _entry_files(self) -> List[Tuple[float, int, str]]:
        """(mtime, size, path) for every entry file, oldest first."""
        entries: List[Tuple[float, int, str]] = []
        try:
            with os.scandir(self.cache_dir) as it:
                for item in it:
                    if not item.name.endswith(".json") or item.name.startswith(
                        ".tmp-"
                    ):
                        continue
                    try:
                        info = item.stat()
                    except OSError:
                        continue
                    entries.append((info.st_mtime, info.st_size, item.path))
        except OSError:
            return []
        entries.sort()
        return entries

    def _enforce_size_cap(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used entries until the cache fits
        ``max_mb``; the just-written ``keep`` key is never evicted."""
        budget = self.max_mb * 1024 * 1024
        entries = self._entry_files()
        total = sum(size for _mtime, size, _path in entries)
        keep_path = self._path(keep) if keep is not None else None
        for _mtime, size, path in entries:
            if total <= budget:
                break
            if path == keep_path:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.stats.evicted += 1

"""Parallel per-sink gadget-chain search.

Each sink's backward search is independent of every other sink's — the
per-sink traversal owns its path state, its ``NODE_GLOBAL`` visited set,
and its negative cache — so the sink list of a
:class:`~repro.core.pathfinder.GadgetChainFinder` run shards cleanly
across a ``ProcessPoolExecutor``:

1. sinks are packed into ``workers * shards_per_worker`` shards with the
   same deterministic greedy LPT heuristic as the build pipeline
   (:mod:`repro.core.parallel`), using the sink's CALL in-degree as the
   cost proxy — a sink's search fans out over its incoming CALL edges,
   so in-degree is the best single predictor of subtree size;
2. each worker process holds one finder over the full graph (built once
   per process by the pool initialiser, including the one-pass
   source-reachability precomputation when pruning is enabled);
3. workers return ``(sink_index, chains)`` pairs plus their
   :class:`~repro.core.pathfinder.SearchStatistics` counters; the parent
   reorders chains by original sink index — exactly the serial
   concatenation order — then sums the counters.

Because every per-sink chain list is a pure function of (graph, sink,
finder config), the merged result is bit-identical to the serial engine
regardless of worker count or shard layout; the differential harness in
``tests/core/test_search_equivalence.py`` asserts exactly that.

How the graph reaches the workers, cheapest first:

1. when the parent's graph is an mmap-backed
   :class:`~repro.graphdb.arraygraph.ArrayGraph` (a v3 snapshot opened
   via ``open_graph``), each worker re-opens the same file path — the
   page cache keeps **one** physical copy no matter how many workers
   map it, under fork and spawn alike;
2. otherwise, with ``fork`` available (Linux), workers inherit the
   parent's in-memory graph copy-on-write — zero pickling;
3. otherwise the graph is shipped once per worker as v2 snapshot bytes,
   whose decode preserves node ids for any graph with dense ids (every
   graph the build pipeline produces).  Only a graph with deletion
   holes still needs its sink ids translated into the worker numbering.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.chains import GadgetChain
from repro.core.cpg import CALL, CPG, CPGStatistics
from repro.graphdb.graph import Node, PropertyGraph
from repro.jvm.hierarchy import ClassHierarchy

__all__ = ["plan_sink_shards", "parallel_find_chains"]

#: shards per worker — more shards, better balance against stragglers
_SHARDS_PER_WORKER = 4


def _sink_cost(graph: PropertyGraph, sink: Node) -> int:
    """Cost proxy for shard balancing: the sink's CALL fan-in (+1 for
    fixed per-sink overhead)."""
    return graph.in_degree(sink, CALL) + 1


def plan_sink_shards(
    graph: PropertyGraph, sinks: Sequence[Node], shard_count: int
) -> List[List[int]]:
    """Deterministic greedy LPT packing of sink *indexes* into at most
    ``shard_count`` shards; empty shards are dropped."""
    shard_count = max(1, shard_count)
    ranked = sorted(
        range(len(sinks)), key=lambda i: (-_sink_cost(graph, sinks[i]), i)
    )
    loads = [0] * shard_count
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for index in ranked:
        target = min(range(shard_count), key=lambda s: (loads[s], s))
        shards[target].append(index)
        loads[target] += _sink_cost(graph, sinks[index])
    return [shard for shard in shards if shard]


# ---------------------------------------------------------------------------
# Worker-side state
# ---------------------------------------------------------------------------

#: parent-side stash read by forked children (copy-on-write, zero
#: pickling); holds whichever graph type the finder runs over
_FORK_GRAPH: Optional[Any] = None

#: per-worker-process finder, set by the pool initialiser
_WORKER_FINDER = None


def _worker_init(payload: Tuple[str, Any], config: Dict[str, Any]) -> None:
    """Build the graph, finder, and reachability set once per worker.

    ``payload`` selects the graph transport: ``("fork", None)`` reads
    the copy-on-write parent stash, ``("path", p)`` mmaps the shared v3
    snapshot at ``p``, and ``("snapshot", data)`` decodes shipped v2
    snapshot bytes (ids preserved — see the module docstring).
    """
    global _WORKER_FINDER
    kind, value = payload
    if kind == "fork":
        graph = _FORK_GRAPH
        if graph is None:  # pragma: no cover - misconfigured pool
            raise RuntimeError("fork worker started without inherited graph")
    elif kind == "path":
        from repro.graphdb.storage import open_graph

        graph = open_graph(value)
    else:
        from repro.graphdb.snapshot import decode_snapshot

        graph = decode_snapshot(value)
    # the worker only needs the graph: sink nodes are handed over by id,
    # and source lookup goes through CPG.source_nodes() -> find_nodes()
    from repro.core.pathfinder import GadgetChainFinder, _make_accept
    from repro.graphdb.traversal import Uniqueness

    cpg = CPG(graph, ClassHierarchy([]), CPGStatistics(), {})
    finder = GadgetChainFinder(
        cpg,
        max_depth=config["max_depth"],
        max_results_per_sink=config["max_results_per_sink"],
        follow_alias=config["follow_alias"],
        uniqueness=Uniqueness(config["uniqueness"]),
        optimize=config["optimize"],
        prune_unreachable=config["prune_unreachable"],
        negative_cache=config["negative_cache"],
        workers=1,
        skip_rta_dead=config["skip_rta_dead"],
    )
    finder._accept = _make_accept(config["accept_spec"])
    if finder.prune_unreachable:
        finder._reachable = finder._compute_source_reachable(graph)
    _WORKER_FINDER = finder


def _search_shard(
    shard: Sequence[Tuple[int, int]]
) -> Tuple[List[Tuple[int, List[GadgetChain]]], Any]:
    """Search a shard of ``(sink_index, sink_id)`` pairs; returns the
    per-sink chain lists plus this shard's search counters."""
    from repro.core.pathfinder import SearchStatistics

    finder = _WORKER_FINDER
    assert finder is not None, "worker pool not initialised"
    # fresh counters per shard so the parent can sum shard stats without
    # double-counting work from earlier shards in the same process
    finder.last_search_stats = SearchStatistics()
    graph = finder.cpg.graph
    pairs: List[Tuple[int, List[GadgetChain]]] = []
    for sink_index, sink_id in shard:
        pairs.append(
            (sink_index, finder._chains_for_sink(graph, graph.node(sink_id)))
        )
    return pairs, finder.last_search_stats


# ---------------------------------------------------------------------------
# Parent-side driver
# ---------------------------------------------------------------------------


def parallel_find_chains(
    finder, sinks: Sequence[Node], accept_spec, workers: int
) -> Tuple[List[List[GadgetChain]], List[Any]]:
    """Run ``finder``'s per-sink search across a worker pool.

    Returns ``(per_sink_chains, shard_stats)`` where ``per_sink_chains``
    is indexed like ``sinks`` — concatenating it reproduces the serial
    engine's chain order exactly — and ``shard_stats`` carries each
    shard's counters for the parent to merge.
    """
    global _FORK_GRAPH
    from repro.graphdb.traversal import Uniqueness  # noqa: F401 (enum used below)

    graph = finder.cpg.graph
    shards = plan_sink_shards(graph, sinks, workers * _SHARDS_PER_WORKER)
    if not shards:
        return [[] for _ in sinks], []
    config: Dict[str, Any] = {
        "max_depth": finder.max_depth,
        "max_results_per_sink": finder.max_results_per_sink,
        "follow_alias": finder.follow_alias,
        "uniqueness": finder.uniqueness.value,
        "optimize": finder.optimize,
        "prune_unreachable": finder.prune_unreachable,
        "negative_cache": finder.negative_cache,
        "skip_rta_dead": finder.skip_rta_dead,
        "accept_spec": accept_spec,
    }
    start_method = (
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    ctx = multiprocessing.get_context(start_method)
    sink_id_of = {sink.id: sink.id for sink in sinks}
    snapshot_path = getattr(graph, "path", None)
    if snapshot_path is not None and os.path.exists(snapshot_path):
        # mmap-backed ArrayGraph: workers re-open the same file and the
        # page cache keeps a single physical copy across all of them
        payload: Tuple[str, Any] = ("path", snapshot_path)
    elif start_method == "fork":
        payload = ("fork", None)
        _FORK_GRAPH = graph
    else:  # pragma: no cover - non-fork platforms without a backing file
        from repro.graphdb.arraygraph import ArrayGraph
        from repro.graphdb.snapshot import encode_snapshot

        source = graph.materialize() if isinstance(graph, ArrayGraph) else graph
        if len(source._nodes) != source._next_node_id:
            # deletions left id holes; the v2 codec renumbers densely on
            # decode, so translate sink ids into the worker's numbering
            remapped = {node.id: i for i, node in enumerate(source.nodes())}
            sink_id_of = {sink.id: remapped[sink.id] for sink in sinks}
        payload = ("snapshot", encode_snapshot(source))
    tasks = [
        [(index, sink_id_of[sinks[index].id]) for index in shard]
        for shard in shards
    ]
    per_sink: List[List[GadgetChain]] = [[] for _ in sinks]
    shard_stats: List[Any] = []
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(shards)),
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(payload, config),
        ) as pool:
            for pairs, stats in pool.map(_search_shard, tasks, chunksize=1):
                for sink_index, chains in pairs:
                    per_sink[sink_index] = chains
                shard_stats.append(stats)
    finally:
        _FORK_GRAPH = None
    return per_sink, shard_stats

"""Variable controllability analysis — Algorithm 1 of the paper.

For every method the analysis walks the method's CFG in reverse
post-order and tracks, per variable, *where its current value
originates* (the Origin lattice of :mod:`repro.core.actions`).  The
walk implements ``doAssignStmtAnalysis`` (the transfer rules of
Table IV) and, at method-call statements, the interprocedural step:

1. compute the call's **Polluted_Position** from the origins of the
   receiver and arguments (Figure 5(c)),
2. recursively obtain the callee's **Action** summary
   (``doMethodAnalysis``, memoised — "the Action property also serves
   as a caching mechanism"),
3. ``out = calc(Action, in)`` (Formula 2) and fold ``out`` back into
   the caller's localMap (``correct``, Formula 3).

Call sites whose PP is all-``∞`` are *pruned* — they can never carry
attacker data, so the Precise Call Graph drops them (this is the MCG →
PCG step of §III-B2 and the path-explosion mitigation of §III-C).

Determinism contract
--------------------

Every memoised summary is a *root-final* value: the result of analysing
its method with a fresh recursion chain, which makes it a pure function
of (method body, class hierarchy) alone.  Summaries whose computation
had to break a recursion cycle (or hit the depth guard) while *nested*
under another root are provisional — they are kept only for the
duration of the current root analysis (so dense recursion clusters stay
polynomial instead of exponential) and the method is re-analysed as its
own root later.  Two rules keep root values order-independent:

* consuming a provisional value taints every frame on the active chain,
  so nothing downstream of a cycle break is ever memoised as clean;
* a *nested* lookup never returns a cycle-tainted final — the callee is
  re-analysed provisionally instead.  A root's value therefore never
  depends on whether a cycle partner happened to be finalised first,
  which is exactly the property that lets the parallel shard workers of
  :mod:`repro.core.parallel` and the seeded summaries of
  :mod:`repro.core.summary_cache` reproduce the serial pipeline bit for
  bit.

Methods whose root-final summary depended on cycle breaking are
recorded in :attr:`ControllabilityAnalysis.cycle_tainted`; the on-disk
cache refuses to persist them.  The depth guard
(``max_recursion_depth``) is a backstop against pathologically deep
*acyclic* chains; if it ever fires on one, order-independence degrades
to best-effort for the affected methods (cycles are always exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError
from repro.core.actions import (
    UNCONTROLLABLE_WEIGHT,
    Action,
    Origin,
    THIS,
    UNCTRL,
    calc,
    join,
    param,
)
from repro.jvm import ir
from repro.jvm.cfg import build_cfg
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaMethod, MethodSignature

__all__ = ["CallSite", "MethodSummary", "ControllabilityAnalysis"]


@dataclass
class CallSite:
    """One method-call statement with its controllability details."""

    caller: JavaMethod
    kind: str
    callee_class: str
    callee_name: str
    arity: int
    #: PP[0] = receiver weight (∞ for static calls), PP[i] = argument i
    polluted_position: List[int]
    #: statically resolved callee, when the hierarchy knows one
    resolved: Optional[JavaMethod]
    #: True when every PP entry is ∞ — dropped from the PCG
    pruned: bool
    #: order of appearance inside the caller body (for chain reporting)
    site_index: int = 0

    @property
    def callee_key(self) -> Tuple[str, str, int]:
        return (self.callee_class, self.callee_name, self.arity)

    def __repr__(self) -> str:
        state = "pruned" if self.pruned else "live"
        return (
            f"<CallSite {self.caller.class_name}.{self.caller.name} -> "
            f"{self.callee_class}.{self.callee_name}/{self.arity} "
            f"PP={self.polluted_position} {state}>"
        )


@dataclass
class MethodSummary:
    """Analysis output for one method."""

    method: JavaMethod
    action: Action
    call_sites: List[CallSite] = field(default_factory=list)

    @property
    def live_call_sites(self) -> List[CallSite]:
        return [c for c in self.call_sites if not c.pruned]


class _LocalMap:
    """The localMap of Algorithm 1: variable and field origins.

    Keys are syntactic, exactly as in Figure 5(c): local names
    (``a2``), field paths (``a.b``), static paths
    (``some.Class.flag``), and array contents (``a.[]``).
    """

    def __init__(self) -> None:
        self.vars: Dict[str, Origin] = {}
        self.fields: Dict[str, Origin] = {}  # "<local>.<field>" keys

    def get_var(self, name: str) -> Origin:
        return self.vars.get(name, UNCTRL)

    def set_var(self, name: str, origin: Origin) -> None:
        self.vars[name] = origin

    def kill_fields_of(self, name: str) -> None:
        """A rebound local no longer aliases its old field entries."""
        prefix = name + "."
        for key in [k for k in self.fields if k.startswith(prefix)]:
            del self.fields[key]

    def copy_fields(self, src: str, dst: str) -> None:
        prefix = src + "."
        for key, origin in list(self.fields.items()):
            if key.startswith(prefix):
                self.fields[dst + "." + key[len(prefix) :]] = origin

    def get_field(self, base: str, fieldname: str, base_origin: Origin) -> Origin:
        """``a = b.f``: a tracked entry wins, otherwise derive from the
        base origin (a field of attacker data is attacker data)."""
        tracked = self.fields.get(f"{base}.{fieldname}")
        if tracked is not None:
            return tracked
        return base_origin.with_field(fieldname)

    def set_field(self, base: str, fieldname: str, origin: Origin) -> None:
        self.fields[f"{base}.{fieldname}"] = origin

    def fields_of(self, base: str) -> Dict[str, Origin]:
        prefix = base + "."
        return {
            key[len(prefix) :]: origin
            for key, origin in self.fields.items()
            if key.startswith(prefix)
        }


class ControllabilityAnalysis:
    """Runs Algorithm 1 over all methods of a class hierarchy."""

    def __init__(
        self,
        hierarchy: ClassHierarchy,
        max_recursion_depth: int = 64,
    ):
        self.hierarchy = hierarchy
        self.max_recursion_depth = max_recursion_depth
        self._summaries: Dict[str, MethodSummary] = {}
        #: the active doMethodAnalysis chain, outermost root first
        self._in_progress: List[str] = []
        self._in_progress_set: Set[str] = set()
        #: keys of the current chain that consumed a provisional
        #: (cycle-breaking) summary; cleared when the root completes
        self._tainted: Set[str] = set()
        #: per-root memo of tainted nested results — consulted so one
        #: root analysis never re-analyses the same cycle member twice;
        #: cleared when the root completes (never survives across roots)
        self._provisional: Dict[str, MethodSummary] = {}
        #: methods whose analysis hit the recursion guard (diagnostics)
        self.recursive_methods: Set[str] = set()
        #: methods whose *memoised* summary depended on cycle breaking;
        #: these are root-final but not safe to persist across builds
        self.cycle_tainted: Set[str] = set()

    # -- public API -------------------------------------------------------

    @staticmethod
    def method_order(methods: Iterable[JavaMethod]) -> List[JavaMethod]:
        """The canonical analysis order: sorted by full signature."""
        return sorted(methods, key=lambda m: m.signature.signature)

    def analyze_all(self) -> Dict[str, MethodSummary]:
        """Analyse every method with a body; returns summaries keyed by
        full signature string, in sorted key order."""
        return self.analyze_methods(self.hierarchy.all_methods())

    def analyze_methods(
        self, methods: Iterable[JavaMethod]
    ) -> Dict[str, MethodSummary]:
        """Analyse the given methods (plus anything they transitively
        require) in canonical order; returns *all* memoised summaries in
        sorted key order."""
        for method in self.method_order(methods):
            if method.has_body:
                self.summary_for(method)
        return {key: self._summaries[key] for key in sorted(self._summaries)}

    def seed_summaries(self, summaries: Iterable[MethodSummary]) -> None:
        """Install externally computed root-final summaries (from the
        on-disk cache or a parallel worker) into the memo table.  Seeded
        values must be root-final — i.e. produced by this class — or the
        determinism contract breaks."""
        for summary in summaries:
            self._summaries[summary.method.signature.signature] = summary

    def summary_for(self, method: JavaMethod) -> MethodSummary:
        """doMethodAnalysis with memoisation (the Action cache)."""
        key = method.signature.signature
        nested = bool(self._in_progress)
        cached = self._summaries.get(key)
        if cached is not None and not (nested and key in self.cycle_tainted):
            # Clean finals are pure values, safe to return anywhere; a
            # cycle-tainted final is only returned at root level — a
            # nested caller must re-derive the cycle member under *its*
            # root's chain, or the root's value would depend on whether
            # the partner happened to be finalised first.
            return cached
        if nested:
            provisional = self._provisional.get(key)
            if provisional is not None:
                # chain-dependent value: everything on the chain becomes
                # provisional too
                self._tainted.update(self._in_progress)
                return provisional
        if (
            key in self._in_progress_set
            or len(self._in_progress) > self.max_recursion_depth
        ):
            # recursion cycle (or pathological depth): conservative
            # identity summary.  Everything currently on the chain now
            # depends on a provisional value, so none of those frames
            # may be memoised except the root itself.
            self.recursive_methods.add(key)
            self._tainted.update(self._in_progress)
            self._tainted.add(key)
            return MethodSummary(
                method, Action.identity(method.arity, not method.is_static)
            )
        if not method.has_body:
            return MethodSummary(method, self._phantom_action(method))
        is_root = not nested
        self._in_progress.append(key)
        self._in_progress_set.add(key)
        try:
            summary = self._do_method_analysis(method)
        finally:
            self._in_progress.pop()
            self._in_progress_set.discard(key)
        if key not in self._tainted:
            # clean: equal to the root analysis of this method, safe to
            # memoise regardless of where in the chain it was computed
            self._summaries[key] = summary
        elif is_root:
            # the root analysis *defines* the final value for a method
            # in a recursion cycle; memoise it but flag it non-persistable
            self._summaries[key] = summary
            self.cycle_tainted.add(key)
        else:
            # provisional nested result: reusable for the rest of this
            # root analysis, then discarded — the method is re-analysed
            # when visited as its own root
            self._provisional[key] = summary
        if is_root:
            self._tainted.clear()
            self._provisional.clear()
        return summary

    # -- phantom / body-less methods ----------------------------------------

    def _phantom_action(self, method: JavaMethod) -> Action:
        """Summary for abstract/native/undefined methods: parameters are
        unchanged and the return value is assumed to derive from the
        receiver when one exists, else from the first parameter.  This
        is the paper's bias for unknown library code — without a body,
        taint is assumed to pass through (§III-C notes the opposite
        default in GadgetInspector/Serianalyzer *for analysed code*
        causes false positives; for truly unknown code there is no
        better option than pass-through)."""
        action = Action.identity(method.arity, not method.is_static)
        if not method.is_static:
            action.mapping["return"] = "this"
        elif method.arity >= 1:
            action.mapping["return"] = "init-param-1"
        return action

    # -- Algorithm 1 ---------------------------------------------------------

    def _do_method_analysis(self, method: JavaMethod) -> MethodSummary:
        cfg = build_cfg(method)
        local_map = _LocalMap()
        summary = MethodSummary(method, Action())
        param_locals: Dict[int, str] = {}
        this_local: Optional[str] = None
        return_origins: List[Origin] = []

        for stmt in cfg.linearized_statements():
            if isinstance(stmt, ir.IdentityStmt):
                if isinstance(stmt.ref, ir.ThisRef):
                    this_local = stmt.local.name
                    local_map.set_var(stmt.local.name, THIS)
                else:
                    param_locals[stmt.ref.index] = stmt.local.name
                    local_map.set_var(stmt.local.name, param(stmt.ref.index))
            elif isinstance(stmt, ir.ReturnStmt):
                if stmt.value is not None:
                    return_origins.append(self._value_origin(stmt.value, local_map))
            elif stmt.invoke_expr() is not None:
                self._do_call_analysis(stmt, local_map, summary)
            elif isinstance(stmt, ir.AssignStmt):
                self._do_assign_stmt_analysis(stmt, local_map)
            # if/goto/switch/throw/nop do not move data

        self._extract_action(
            summary, local_map, this_local, param_locals, return_origins, method
        )
        return summary

    # -- doAssignStmtAnalysis: Table IV transfer rules --------------------------

    def _value_origin(self, value: ir.Value, local_map: _LocalMap) -> Origin:
        if isinstance(value, ir.Local):
            return local_map.get_var(value.name)
        if isinstance(value, ir.InstanceFieldRef):
            base_origin = local_map.get_var(value.base.name)
            return local_map.get_field(value.base.name, value.field_name, base_origin)
        if isinstance(value, ir.StaticFieldRef):
            # Table IV: Class.field -> a; only a same-body store makes it
            # controllable, otherwise static state is not attacker data.
            return local_map.fields.get(
                f"{value.class_name}.{value.field_name}", UNCTRL
            )
        if isinstance(value, ir.ArrayRef):
            base_origin = local_map.get_var(value.base.name)
            return local_map.get_field(value.base.name, "[]", base_origin)
        if isinstance(value, ir.CastExpr):
            return self._value_origin(value.op, local_map)
        if isinstance(value, ir.BinOpExpr):
            return join(
                self._value_origin(value.left, local_map),
                self._value_origin(value.right, local_map),
            )
        if isinstance(value, (ir.NewExpr, ir.NewArrayExpr, ir.InstanceOfExpr)):
            return UNCTRL
        if isinstance(value, ir.Constant):
            return UNCTRL
        if isinstance(value, (ir.ThisRef,)):
            return THIS
        if isinstance(value, ir.ParamRef):
            return param(value.index)
        raise AnalysisError(f"cannot compute origin of {value!r}")

    def _do_assign_stmt_analysis(
        self, stmt: ir.AssignStmt, local_map: _LocalMap
    ) -> None:
        origin = self._value_origin(stmt.rhs, local_map)
        target = stmt.target
        if isinstance(target, ir.Local):
            local_map.set_var(target.name, origin)
            local_map.kill_fields_of(target.name)
            if isinstance(stmt.rhs, ir.Local):
                local_map.copy_fields(stmt.rhs.name, target.name)
        elif isinstance(target, ir.InstanceFieldRef):
            local_map.set_field(target.base.name, target.field_name, origin)
        elif isinstance(target, ir.StaticFieldRef):
            local_map.fields[f"{target.class_name}.{target.field_name}"] = origin
        elif isinstance(target, ir.ArrayRef):
            existing = local_map.fields.get(f"{target.base.name}.[]", UNCTRL)
            local_map.set_field(target.base.name, "[]", join(existing, origin))

    # -- interprocedural step ------------------------------------------------------

    def _do_call_analysis(
        self, stmt: ir.Statement, local_map: _LocalMap, summary: MethodSummary
    ) -> None:
        invoke = stmt.invoke_expr()
        assert invoke is not None

        # Polluted_Position: receiver weight then argument weights.
        if invoke.base is None:
            base_origin = UNCTRL
            base_name: Optional[str] = None
        else:
            base_origin = self._value_origin(invoke.base, local_map)
            base_name = invoke.base.name if isinstance(invoke.base, ir.Local) else None
        arg_origins = [self._value_origin(a, local_map) for a in invoke.args]
        pp = [base_origin.weight] + [o.weight for o in arg_origins]
        pruned = all(w == UNCONTROLLABLE_WEIGHT for w in pp)
        # Even when every top-level position is ∞, a tracked *field* of
        # the receiver or an argument may be controllable (the Figure 5
        # localMap keeps a.b: 2 while a itself is ∞); the interprocedural
        # composition must still run then, or getter results lose taint.
        compose = not pruned
        if not compose:
            operands = [invoke.base] + list(invoke.args)
            for operand in operands:
                if isinstance(operand, ir.Local) and any(
                    origin.is_controllable
                    for origin in local_map.fields_of(operand.name).values()
                ):
                    compose = True
                    break

        resolved: Optional[JavaMethod] = None
        if invoke.kind != ir.InvokeKind.DYNAMIC:
            resolved = self.hierarchy.resolve_method(
                invoke.class_name, invoke.method_name, invoke.arity
            )

        site = CallSite(
            caller=summary.method,
            kind=invoke.kind,
            callee_class=invoke.class_name,
            callee_name=invoke.method_name,
            arity=invoke.arity,
            polluted_position=pp,
            resolved=resolved,
            pruned=pruned,
            site_index=len(summary.call_sites),
        )
        summary.call_sites.append(site)

        result_origin = UNCTRL
        if compose:
            # Interprocedural composition (calc + correct).
            if resolved is not None and resolved.has_body:
                callee_summary = self.summary_for(resolved)
                action = callee_summary.action
            elif resolved is not None:
                action = self._phantom_action(resolved)
            else:
                # Phantom callee: synthesise from the invocation shape.
                action = self._phantom_invoke_action(invoke)
            inputs = self._build_inputs(
                invoke, base_origin, base_name, arg_origins, local_map
            )
            out = calc(action, inputs)
            self._correct(local_map, out, invoke, base_name)
            result_origin = out.get("return", UNCTRL)

        if isinstance(stmt, ir.AssignStmt) and isinstance(stmt.target, ir.Local):
            local_map.set_var(stmt.target.name, result_origin)
            local_map.kill_fields_of(stmt.target.name)

    def _phantom_invoke_action(self, invoke: ir.InvokeExpr) -> Action:
        has_this = invoke.base is not None
        action = Action.identity(invoke.arity, has_this)
        if has_this:
            action.mapping["return"] = "this"
        elif invoke.arity >= 1:
            action.mapping["return"] = "init-param-1"
        return action

    def _build_inputs(
        self,
        invoke: ir.InvokeExpr,
        base_origin: Origin,
        base_name: Optional[str],
        arg_origins: Sequence[Origin],
        local_map: _LocalMap,
    ) -> Dict[str, Origin]:
        """The ``in`` map of Figure 5(d): callee initial frame -> caller
        origins, including tracked field entries."""
        inputs: Dict[str, Origin] = {"this": base_origin}
        if base_name is not None:
            for fieldname, origin in local_map.fields_of(base_name).items():
                inputs[f"this.{fieldname}"] = origin
        for i, origin in enumerate(arg_origins, start=1):
            inputs[f"init-param-{i}"] = origin
            arg = invoke.args[i - 1]
            if isinstance(arg, ir.Local):
                for fieldname, forigin in local_map.fields_of(arg.name).items():
                    inputs[f"init-param-{i}.{fieldname}"] = forigin
        return inputs

    def _correct(
        self,
        local_map: _LocalMap,
        out: Dict[str, Origin],
        invoke: ir.InvokeExpr,
        base_name: Optional[str],
    ) -> None:
        """Formula 3: fold the callee's final-frame origins back into the
        caller's localMap entries for the receiver and argument locals."""
        for key, origin in out.items():
            if key == "return":
                continue
            head, _, fieldname = key.partition(".")
            if head == "this":
                target = base_name
            elif head.startswith("final-param-"):
                index = int(head[len("final-param-") :])
                if index > len(invoke.args):
                    continue
                arg = invoke.args[index - 1]
                target = arg.name if isinstance(arg, ir.Local) else None
            else:
                continue
            if target is None:
                continue
            if fieldname:
                local_map.set_field(target, fieldname, origin)
            else:
                local_map.set_var(target, origin)

    # -- Action extraction -------------------------------------------------------

    def _extract_action(
        self,
        summary: MethodSummary,
        local_map: _LocalMap,
        this_local: Optional[str],
        param_locals: Dict[int, str],
        return_origins: List[Origin],
        method: JavaMethod,
    ) -> None:
        action = summary.action
        if this_local is not None:
            action.set("this", local_map.get_var(this_local))
            for fieldname, origin in local_map.fields_of(this_local).items():
                action.set(f"this.{fieldname}", origin)
        for index, local in param_locals.items():
            action.set(f"final-param-{index}", local_map.get_var(local))
            for fieldname, origin in local_map.fields_of(local).items():
                action.set(f"final-param-{index}.{fieldname}", origin)
        if return_origins:
            merged = return_origins[0]
            for origin in return_origins[1:]:
                merged = join(merged, origin)
            action.set("return", merged)
        elif not method.return_type.is_void:
            action.set("return", UNCTRL)

"""Gadget-chain data model and reporting.

A :class:`GadgetChain` is the method-call stack from a source method to
a sink method (Table I).  Chains render in the paper's stack format::

    (source)demo.EvilObjectA.readObject()
    java.lang.Object.toString()
    demo.EvilObjectB.toString()
    (sink)java.lang.Runtime.exec()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["ChainStep", "GadgetChain", "dedupe_chains", "filter_by_package"]


@dataclass(frozen=True)
class ChainStep:
    """One method on the chain."""

    class_name: str
    method_name: str
    arity: int
    #: how this step connects to the *next* one: "CALL", "ALIAS" or ""
    edge_to_next: str = ""

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.method_name}"

    def __str__(self) -> str:
        return f"{self.qualified}()"


class GadgetChain:
    """An ordered source-to-sink method stack."""

    def __init__(
        self,
        steps: Sequence[ChainStep],
        sink_category: str = "",
        trigger_condition: Sequence[int] = (),
    ):
        if len(steps) < 2:
            raise ValueError("a gadget chain needs at least a source and a sink")
        self.steps: Tuple[ChainStep, ...] = tuple(steps)
        self.sink_category = sink_category
        self.trigger_condition: Tuple[int, ...] = tuple(trigger_condition)

    @property
    def source(self) -> ChainStep:
        return self.steps[0]

    @property
    def sink(self) -> ChainStep:
        return self.steps[-1]

    @property
    def length(self) -> int:
        """Number of hops (edges) on the chain."""
        return len(self.steps) - 1

    @property
    def key(self) -> Tuple[Tuple[str, str, int], ...]:
        """Identity used for deduplication and ground-truth matching:
        the (class, method, arity) sequence."""
        return tuple((s.class_name, s.method_name, s.arity) for s in self.steps)

    @property
    def endpoint_key(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        """Loose identity: (source, sink) pair only."""
        return (
            (self.source.class_name, self.source.method_name),
            (self.sink.class_name, self.sink.method_name),
        )

    def classes(self) -> List[str]:
        seen: List[str] = []
        for step in self.steps:
            if step.class_name not in seen:
                seen.append(step.class_name)
        return seen

    def touches_package(self, package_prefix: str) -> bool:
        return any(s.class_name.startswith(package_prefix) for s in self.steps)

    def render(self) -> str:
        """The Table I / Table XI stack rendering."""
        lines = []
        for i, step in enumerate(self.steps):
            prefix = ""
            if i == 0:
                prefix = "(source)"
            elif i == len(self.steps) - 1:
                prefix = "(sink)"
            lines.append(f"{prefix}{step}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GadgetChain) and other.key == self.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        arrow = " -> ".join(s.qualified for s in self.steps)
        return f"<GadgetChain {arrow}>"


def dedupe_chains(chains: Iterable[GadgetChain]) -> List[GadgetChain]:
    """Drop exact duplicates, preserving first-seen order."""
    seen = set()
    out: List[GadgetChain] = []
    for chain in chains:
        if chain.key not in seen:
            seen.add(chain.key)
            out.append(chain)
    return out


def filter_by_package(
    chains: Iterable[GadgetChain], package_prefix: str
) -> List[GadgetChain]:
    """Keep chains touching a package — the post-filter the paper applies
    to Serianalyzer's flood of output (§IV-C)."""
    return [c for c in chains if c.touches_package(package_prefix)]

"""Benchmark harness: regenerates every evaluation table and figure.

* Table VIII — :func:`run_table_viii` (CPG generation efficiency, RQ1)
* Table IX — :func:`run_table_ix` (comparison vs baselines, RQ2)
* Table X — :func:`run_table_x` (development scenes, RQ3)
* Table XI — :func:`run_table_xi` (Spring JNDI chains)

Formatting helpers print each table in the paper's layout.  The pytest
drivers live under ``benchmarks/``.
"""

from repro.bench.metrics import ToolScore, classify_chains, fnr, fpr
from repro.bench.tables import (
    ComponentResult,
    SceneResult,
    TableVIIIRow,
    format_table_ix,
    format_table_viii,
    format_table_x,
    format_table_xi,
    run_scene,
    run_table_ix,
    run_table_ix_component,
    run_table_viii,
    run_table_x,
    run_table_xi,
    table_ix_totals,
)

__all__ = [
    "ToolScore",
    "classify_chains",
    "fpr",
    "fnr",
    "TableVIIIRow",
    "ComponentResult",
    "SceneResult",
    "run_table_viii",
    "run_table_ix",
    "run_table_ix_component",
    "run_table_x",
    "run_table_xi",
    "run_scene",
    "table_ix_totals",
    "format_table_viii",
    "format_table_ix",
    "format_table_x",
    "format_table_xi",
]

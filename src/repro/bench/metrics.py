"""Evaluation metrics: chain classification, FPR and FNR.

Implements the paper's Formulas 5 and 6 and the classification used in
Table IX: every reported chain is *Known* (its endpoints appear in the
ysoserial/marshalsec ground truth for the component), *Unknown*
(effective per the PoC oracle but not in the dataset), or *Fake*
(rejected by the oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.core.chains import GadgetChain
from repro.corpus.base import ComponentSpec, KnownChainSpec
from repro.verify import ChainVerifier

__all__ = ["ToolScore", "classify_chains", "fpr", "fnr"]


@dataclass
class ToolScore:
    """One tool's Table IX row for one component."""

    tool: str
    component: str
    result_count: int = 0
    fake_count: int = 0
    known_found: int = 0
    unknown_count: int = 0
    known_in_dataset: int = 0
    terminated: bool = True
    elapsed_seconds: float = 0.0

    @property
    def fpr_percent(self) -> Optional[float]:
        """Formula 5; None when the tool produced no output."""
        if not self.terminated or self.result_count == 0:
            return None
        return 100.0 * self.fake_count / self.result_count

    @property
    def fnr_percent(self) -> Optional[float]:
        """Formula 6."""
        if not self.terminated or self.known_in_dataset == 0:
            return None
        return 100.0 * (self.known_in_dataset - self.known_found) / self.known_in_dataset


def classify_chains(
    tool: str,
    spec: ComponentSpec,
    chains: Sequence[GadgetChain],
    verifier: ChainVerifier,
    terminated: bool = True,
    elapsed_seconds: float = 0.0,
) -> ToolScore:
    """Classify a tool's output against a component's ground truth.

    Chains matching a known spec by endpoints count toward ``known``
    (each dataset chain at most once); the rest are verified with the
    PoC oracle and land in ``unknown`` (effective) or ``fake``.
    """
    score = ToolScore(
        tool=tool,
        component=spec.name,
        known_in_dataset=spec.known_count,
        terminated=terminated,
        elapsed_seconds=elapsed_seconds,
    )
    if not terminated:
        return score
    matched: Set[KnownChainSpec] = set()
    score.result_count = len(chains)
    for chain in chains:
        known = spec.match_known(chain)
        if known is not None:
            matched.add(known)
            continue
        if verifier.verify(chain).effective:
            score.unknown_count += 1
        else:
            score.fake_count += 1
    score.known_found = len(matched)
    return score


def fpr(fake_count: int, result_count: int) -> float:
    """Formula 5: fake / result * 100."""
    if result_count == 0:
        return 0.0
    return 100.0 * fake_count / result_count


def fnr(known_found: int, known_in_dataset: int) -> float:
    """Formula 6: (dataset - found) / dataset * 100."""
    if known_in_dataset == 0:
        return 0.0
    return 100.0 * (known_in_dataset - known_found) / known_in_dataset

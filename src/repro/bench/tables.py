"""Regeneration of every evaluation table (VIII, IX, X, XI).

Each ``run_table_*`` function returns structured rows; each
``format_table_*`` renders them in the paper's layout.  The pytest
benchmarks under ``benchmarks/`` call these and assert the *shape*
claims (linearity, who-wins ordering, non-termination cells).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import GadgetInspector, Serianalyzer
from repro.bench.metrics import ToolScore, classify_chains
from repro.core import SourceCatalog, Tabby
from repro.core.chains import GadgetChain
from repro.corpus import (
    COMPONENT_NAMES,
    SCENE_BUILDERS,
    build_component,
    build_lang_base,
    build_scene,
    generate_corpus,
)
from repro.corpus.scenes import TABLE_XI_TARGET_SOURCES, SceneSpec
from repro.verify import ChainVerifier

__all__ = [
    "TableVIIIRow",
    "run_table_viii",
    "format_table_viii",
    "ComponentResult",
    "run_table_ix",
    "run_table_ix_component",
    "format_table_ix",
    "SceneResult",
    "run_table_x",
    "format_table_x",
    "run_table_xi",
    "format_table_xi",
]

#: Serianalyzer's step budget used throughout the evaluation; see
#: repro.baselines.serianalyzer for why the bombs exceed it.
SL_STEP_BUDGET = 40_000


# ---------------------------------------------------------------------------
# Table VIII — CPG generation efficiency (RQ1)
# ---------------------------------------------------------------------------


@dataclass
class TableVIIIRow:
    code_kb: int
    actual_kb: float
    jar_count: int
    class_nodes: int
    method_nodes: int
    relationship_edges: int
    seconds: float


def run_table_viii(
    sizes_kb: Sequence[int] = (10, 20, 30, 40, 50, 100, 150),
    repetitions: int = 10,
    seed: int = 7,
) -> List[TableVIIIRow]:
    """CPG generation timing over scaled corpora.

    Follows the paper's protocol: ``repetitions`` runs per size, drop
    the min and max, average the rest.
    """
    rows: List[TableVIIIRow] = []
    for size in sizes_kb:
        jars = generate_corpus(size, seed=seed)
        classes = [c for jar in jars for c in jar.classes]
        actual_kb = sum(jar.code_size_bytes() for jar in jars) / 1024.0
        times: List[float] = []
        stats = None
        for _ in range(max(repetitions, 3)):
            tabby = Tabby().add_classes(classes)
            started = time.perf_counter()
            cpg = tabby.build_cpg()
            times.append(time.perf_counter() - started)
            stats = cpg.statistics
        assert stats is not None
        if len(times) > 2:
            times = sorted(times)[1:-1]  # drop min and max
        rows.append(
            TableVIIIRow(
                code_kb=size,
                actual_kb=actual_kb,
                jar_count=len(jars),
                class_nodes=stats.class_node_count,
                method_nodes=stats.method_node_count,
                relationship_edges=stats.relationship_edge_count,
                seconds=statistics.mean(times),
            )
        )
    return rows


def format_table_viii(rows: Sequence[TableVIIIRow]) -> str:
    header = (
        f"{'Code(KB)':>9} {'Jar':>4} {'Class':>7} {'Method':>8} "
        f"{'Edges':>9} {'Time(s)':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.code_kb:>9} {r.jar_count:>4} {r.class_nodes:>7} "
            f"{r.method_nodes:>8} {r.relationship_edges:>9} {r.seconds:>8.3f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table IX — comparison with GadgetInspector and Serianalyzer (RQ2)
# ---------------------------------------------------------------------------


@dataclass
class ComponentResult:
    component: str
    known_in_dataset: int
    tabby: ToolScore
    gadgetinspector: ToolScore
    serianalyzer: ToolScore
    #: Tabby re-scored after guard-feasibility refinement; only set when
    #: run with refine_guards=True (extension, never alters the baseline
    #: ``tabby`` column)
    tabby_refined: Optional[ToolScore] = None


def run_table_ix_component(
    name: str,
    sl_step_budget: int = SL_STEP_BUDGET,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    refine_guards: bool = False,
) -> ComponentResult:
    """Run all three tools on one Table IX component.

    ``workers``/``cache_dir`` tune Tabby's CPG build only (the baselines
    stay serial, as in the paper).  A shared ``cache_dir`` pays off
    across components: every component includes the same language base
    classes, whose summaries are re-used after the first build.

    ``refine_guards=True`` adds a fourth score: Tabby's chain list
    post-filtered by :mod:`repro.core.refine`.  The baseline columns are
    computed from the unrefined list either way, so Table IX stays
    bit-identical with the flag on or off.
    """
    spec = build_component(name)
    classes = build_lang_base() + spec.classes
    verifier = ChainVerifier(classes)

    tabby = Tabby(workers=workers, cache_dir=cache_dir).add_classes(classes)
    started = time.perf_counter()
    chains = tabby.find_gadget_chains()
    tabby_score = classify_chains(
        "tabby", spec, chains, verifier, elapsed_seconds=time.perf_counter() - started
    )
    refined_score: Optional[ToolScore] = None
    if refine_guards:
        from repro.core.refine import GuardFeasibilityRefiner

        started = time.perf_counter()
        kept, _refuted = GuardFeasibilityRefiner(tabby.cpg.hierarchy).refine(chains)
        refined_score = classify_chains(
            "tabby+refine",
            spec,
            kept,
            verifier,
            elapsed_seconds=time.perf_counter() - started,
        )

    gi_result = GadgetInspector(classes).run()
    gi_score = classify_chains(
        "gadgetinspector",
        spec,
        gi_result.chains,
        verifier,
        terminated=gi_result.terminated,
        elapsed_seconds=gi_result.elapsed_seconds,
    )

    sl_result = Serianalyzer(classes, step_budget=sl_step_budget).run()
    sl_score = classify_chains(
        "serianalyzer",
        spec,
        sl_result.chains,
        verifier,
        terminated=sl_result.terminated,
        elapsed_seconds=sl_result.elapsed_seconds,
    )
    return ComponentResult(
        spec.name,
        spec.known_count,
        tabby_score,
        gi_score,
        sl_score,
        tabby_refined=refined_score,
    )


def run_table_ix(
    components: Optional[Sequence[str]] = None,
    sl_step_budget: int = SL_STEP_BUDGET,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    refine_guards: bool = False,
) -> List[ComponentResult]:
    names = list(components) if components is not None else list(COMPONENT_NAMES)
    return [
        run_table_ix_component(
            name,
            sl_step_budget,
            workers=workers,
            cache_dir=cache_dir,
            refine_guards=refine_guards,
        )
        for name in names
    ]


def table_ix_totals(results: Sequence[ComponentResult]) -> Dict[str, float]:
    """The Total row: aggregate counts and average FPR/FNR."""
    total: Dict[str, float] = {
        "known_in_dataset": sum(r.known_in_dataset for r in results)
    }
    for tool in ("tabby", "gadgetinspector", "serianalyzer"):
        scores: List[ToolScore] = [getattr(r, tool) for r in results]
        done = [s for s in scores if s.terminated]
        total[f"{tool}_result"] = sum(s.result_count for s in done)
        total[f"{tool}_fake"] = sum(s.fake_count for s in done)
        total[f"{tool}_known"] = sum(s.known_found for s in done)
        total[f"{tool}_unknown"] = sum(s.unknown_count for s in done)
        total[f"{tool}_unterminated"] = sum(1 for s in scores if not s.terminated)
        result = total[f"{tool}_result"]
        total[f"{tool}_fpr"] = 100.0 * total[f"{tool}_fake"] / result if result else 0.0
        known = sum(s.known_in_dataset for s in done)
        total[f"{tool}_fnr"] = (
            100.0 * (known - total[f"{tool}_known"]) / known if known else 0.0
        )
    return total


def format_table_ix(results: Sequence[ComponentResult]) -> str:
    header = (
        f"{'Component':<28}{'Known':>6} | "
        f"{'Result GI/TB/SL':>18} | {'Fake GI/TB/SL':>16} | "
        f"{'Known GI/TB/SL':>15} | {'Unk GI/TB/SL':>14}"
    )
    lines = [header, "-" * len(header)]

    def cell(score: ToolScore, attr: str) -> str:
        if not score.terminated:
            return "X"
        return str(getattr(score, attr))

    for r in results:
        gi, tb, sl = r.gadgetinspector, r.tabby, r.serianalyzer
        lines.append(
            f"{r.component:<28}{r.known_in_dataset:>6} | "
            f"{cell(gi,'result_count'):>5}/{cell(tb,'result_count'):>4}/{cell(sl,'result_count'):>5} | "
            f"{cell(gi,'fake_count'):>5}/{cell(tb,'fake_count'):>3}/{cell(sl,'fake_count'):>4} | "
            f"{cell(gi,'known_found'):>4}/{cell(tb,'known_found'):>3}/{cell(sl,'known_found'):>4} | "
            f"{cell(gi,'unknown_count'):>4}/{cell(tb,'unknown_count'):>3}/{cell(sl,'unknown_count'):>3}"
        )
    totals = table_ix_totals(results)
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':<28}{int(totals['known_in_dataset']):>6} | "
        f"{int(totals['gadgetinspector_result']):>5}/{int(totals['tabby_result']):>4}/{int(totals['serianalyzer_result']):>5} | "
        f"{int(totals['gadgetinspector_fake']):>5}/{int(totals['tabby_fake']):>3}/{int(totals['serianalyzer_fake']):>4} | "
        f"{int(totals['gadgetinspector_known']):>4}/{int(totals['tabby_known']):>3}/{int(totals['serianalyzer_known']):>4} | "
        f"{int(totals['gadgetinspector_unknown']):>4}/{int(totals['tabby_unknown']):>3}/{int(totals['serianalyzer_unknown']):>3}"
    )
    lines.append(
        f"FPR%  GI={totals['gadgetinspector_fpr']:.1f} TB={totals['tabby_fpr']:.1f} "
        f"SL={totals['serianalyzer_fpr']:.1f}   (paper: 93.0 / 32.9 / 98.6)"
    )
    lines.append(
        f"FNR%  GI={totals['gadgetinspector_fnr']:.1f} TB={totals['tabby_fnr']:.1f} "
        f"SL={totals['serianalyzer_fnr']:.1f}   (paper: 86.8 / 31.6 / 81.6)"
    )
    refined = [r.tabby_refined for r in results if r.tabby_refined is not None]
    if refined:
        result = sum(s.result_count for s in refined)
        fake = sum(s.fake_count for s in refined)
        known_found = sum(s.known_found for s in refined)
        known_ds = sum(s.known_in_dataset for s in refined)
        refined_fpr = 100.0 * fake / result if result else 0.0
        refined_fnr = (
            100.0 * (known_ds - known_found) / known_ds if known_ds else 0.0
        )
        refuted = sum(
            r.tabby.result_count - r.tabby_refined.result_count
            for r in results
            if r.tabby_refined is not None
        )
        lines.append(
            f"with --refine-guards: TB FPR={refined_fpr:.1f} "
            f"(Δ{refined_fpr - totals['tabby_fpr']:+.1f}) "
            f"FNR={refined_fnr:.1f} "
            f"(Δ{refined_fnr - totals['tabby_fnr']:+.1f})   "
            f"{refuted} chain(s) refuted (extension, baseline unchanged)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table X — development scenes (RQ3)
# ---------------------------------------------------------------------------


@dataclass
class SceneResult:
    scene: str
    version: str
    jar_count: int
    code_kb: float
    result_count: int
    effective_count: int
    fpr_percent: float
    search_seconds: float
    chains: List[GadgetChain] = field(default_factory=list)
    effective_chains: List[GadgetChain] = field(default_factory=list)


def run_scene(name: str) -> SceneResult:
    scene = build_scene(name)
    tabby = Tabby().add_classes(scene.classes)
    tabby.build_cpg()
    started = time.perf_counter()
    chains = tabby.find_gadget_chains()
    search_seconds = time.perf_counter() - started
    verifier = ChainVerifier(scene.classes)
    effective = [c for c in chains if verifier.verify(c).effective]
    fake = len(chains) - len(effective)
    return SceneResult(
        scene=scene.name,
        version=scene.version,
        jar_count=scene.jar_count,
        code_kb=scene.code_size_bytes() / 1024.0,
        result_count=len(chains),
        effective_count=len(effective),
        fpr_percent=100.0 * fake / len(chains) if chains else 0.0,
        search_seconds=search_seconds,
        chains=chains,
        effective_chains=effective,
    )


def run_table_x() -> List[SceneResult]:
    return [run_scene(name) for name in SCENE_BUILDERS]


def format_table_x(rows: Sequence[SceneResult]) -> str:
    header = (
        f"{'Scene':<14}{'Version':<9}{'Jars':>5}{'Code(KB)':>10}"
        f"{'Result':>8}{'Effective':>11}{'FPR':>8}{'Search(s)':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.scene:<14}{r.version:<9}{r.jar_count:>5}{r.code_kb:>10.1f}"
            f"{r.result_count:>8}{r.effective_count:>11}{r.fpr_percent:>7.1f}%"
            f"{r.search_seconds:>11.3f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table XI — Spring-framework gadget chains
# ---------------------------------------------------------------------------


def run_table_xi() -> List[GadgetChain]:
    """The JNDI-injection chains found in the Spring scene, in the
    Table XI presentation (getTarget -> getBean -> lookup -> Context)."""
    result = run_scene("Spring")
    chains = [
        c
        for c in result.effective_chains
        if any(step.class_name in TABLE_XI_TARGET_SOURCES for step in c.steps)
    ]
    chains.sort(key=lambda c: c.key)
    return chains


def format_table_xi(chains: Sequence[GadgetChain]) -> str:
    blocks = []
    for i, chain in enumerate(chains, start=1):
        # present the chain from the getTarget hop, as the paper does
        start = next(
            (
                j
                for j, s in enumerate(chain.steps)
                if s.class_name in TABLE_XI_TARGET_SOURCES
            ),
            0,
        )
        lines = [f"#{i}"]
        lines += [f"  {step.qualified}()" for step in chain.steps[start:]]
        blocks.append("\n".join(lines))
    return "\n".join(blocks)

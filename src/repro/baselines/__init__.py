"""Baseline gadget-chain detectors the paper compares against (§IV-C).

* :mod:`repro.baselines.gadgetinspector` — Ian Haken's GadgetInspector
  (Black Hat 2018), reimplemented with its documented weaknesses;
* :mod:`repro.baselines.serianalyzer` — Moritz Bechler's Serianalyzer,
  reimplemented with its over-approximation and termination problems.

Both consume the same class model as Tabby but, like the originals,
build their own ASM-style call graphs rather than a CPG.
"""

from repro.baselines.common import BaselineResult
from repro.baselines.gadgetinspector import GadgetInspector
from repro.baselines.serianalyzer import Serianalyzer

__all__ = ["BaselineResult", "GadgetInspector", "Serianalyzer"]

"""Serianalyzer reimplementation (the pre-GadgetInspector baseline).

Faithful to the original's *strategy* — a backward search from sink
call sites over a fully over-approximated (CHA) reverse call graph —
and to the behaviour the paper observes:

* **No controllability analysis**: every backward path from a sink to
  any method whose *name* looks like a deserialization entry point is
  reported, whether or not the class is serializable or the dangerous
  argument is attacker-reachable.  This yields the chain floods of
  Table IX ("often in the hundreds per component") and a ~98.6%
  false-positive rate after package filtering.
* **Aggressive call-graph pruning**: to keep the search tractable the
  tool caps how many callers it expands per method; real chains behind
  the cap are lost (~81.6% false-negative rate) — "it may have had a
  problem with pruning during the call graph construction process".
* **Non-termination**: backward path enumeration without a visited set
  explodes on components with dense mutually-recursive call clusters;
  with the step budget exhausted the run is marked unterminated (the
  ``✗`` cells for Clojure/Jython).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.common import BaselineResult
from repro.core.chains import ChainStep, GadgetChain, dedupe_chains
from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod

__all__ = ["Serianalyzer"]


class Serianalyzer:
    """Backward over-approximated search with Serianalyzer's defects."""

    TOOL_NAME = "serianalyzer"

    def __init__(
        self,
        classes: Sequence[JavaClass],
        sinks: Optional[SinkCatalog] = None,
        sources: Optional[SourceCatalog] = None,
        max_depth: int = 10,
        step_budget: int = 150_000,
        caller_cap: int = 3,
    ):
        self.hierarchy = ClassHierarchy(classes)
        self.sinks = sinks if sinks is not None else SinkCatalog()
        self.sources = sources if sources is not None else SourceCatalog.extended()
        self.max_depth = max_depth
        self.step_budget = step_budget
        #: callers expanded per method (the lossy pruning)
        self.caller_cap = caller_cap
        self._reverse_graph: Optional[Dict[str, List[JavaMethod]]] = None

    # -- reverse call graph (full CHA over-approximation) -------------------

    def _build_reverse_graph(self) -> Dict[str, List[JavaMethod]]:
        """callee key -> callers.  A virtual/interface call edge is added
        to the declared target *and* every subtype override — maximal
        over-approximation, no controllability."""
        reverse: Dict[str, List[JavaMethod]] = {}

        def add(callee_key: str, caller: JavaMethod) -> None:
            callers = reverse.setdefault(callee_key, [])
            if not any(existing is caller for existing in callers):
                callers.append(caller)

        for method in self.hierarchy.all_methods():
            for invoke in ir.iter_invoke_exprs(method.body):
                if invoke.kind == ir.InvokeKind.DYNAMIC:
                    continue
                add(self._key(invoke.class_name, invoke.method_name, invoke.arity), method)
                for target in self.hierarchy.dispatch_targets(
                    invoke.class_name, invoke.method_name, invoke.arity
                ):
                    add(
                        self._key(target.class_name, target.name, target.arity),
                        method,
                    )
                # bridge: a call to a subtype method also "reaches" its
                # declarations up the hierarchy (more over-approximation)
                resolved = self.hierarchy.resolve_method(
                    invoke.class_name, invoke.method_name, invoke.arity
                )
                if resolved is not None:
                    for parent in self.hierarchy.alias_parents(resolved):
                        add(
                            self._key(parent.class_name, parent.name, parent.arity),
                            method,
                        )
        return reverse

    @staticmethod
    def _key(class_name: str, method_name: str, arity: int) -> str:
        return f"{class_name}.{method_name}/{arity}"

    # -- search -------------------------------------------------------------------

    def _looks_like_source(self, method: JavaMethod) -> bool:
        """Name-only source check: no serializability requirement —
        one of the over-approximations that floods the output."""
        return method.has_body and method.name in self.sources.names

    def run(self) -> BaselineResult:
        started = time.perf_counter()
        result = BaselineResult(self.TOOL_NAME)
        reverse = self._build_reverse_graph()
        chains: List[GadgetChain] = []
        steps = 0

        sink_sites: List[Tuple[str, str, int, str, Tuple[int, ...]]] = []
        seen_sites: Set[str] = set()
        for method in self.hierarchy.all_methods():
            for invoke in ir.iter_invoke_exprs(method.body):
                sink = self.sinks.lookup(invoke.class_name, invoke.method_name)
                if sink is None:
                    continue
                key = self._key(invoke.class_name, invoke.method_name, invoke.arity)
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                sink_sites.append(
                    (
                        invoke.class_name,
                        invoke.method_name,
                        invoke.arity,
                        sink.category,
                        sink.trigger_condition,
                    )
                )

        for sink_class, sink_name, sink_arity, category, tc in sink_sites:
            # depth-first path enumeration, no visited set (weakness 3)
            stack: List[List[JavaMethod]] = []
            for caller in reverse.get(self._key(sink_class, sink_name, sink_arity), [])[
                : self.caller_cap
            ]:
                stack.append([caller])
            while stack:
                steps += 1
                if steps > self.step_budget:
                    result.terminated = False
                    break
                path = stack.pop()
                head = path[0]
                if self._looks_like_source(head):
                    chain_steps = [
                        ChainStep(m.class_name, m.name, m.arity, "CALL")
                        for m in path
                    ]
                    chain_steps.append(ChainStep(sink_class, sink_name, sink_arity))
                    chains.append(
                        GadgetChain(
                            chain_steps,
                            sink_category=category,
                            trigger_condition=tc,
                        )
                    )
                    # keep exploring: longer chains to other entry points
                if len(path) >= self.max_depth:
                    continue
                callers = reverse.get(
                    self._key(head.class_name, head.name, head.arity), []
                )
                expanded = 0
                for caller in callers:
                    if expanded >= self.caller_cap:  # weakness 2 (lossy cap)
                        break
                    if any(m is caller for m in path):  # cycle guard only
                        continue
                    expanded += 1
                    stack.append([caller] + path)
            if not result.terminated:
                break

        result.chains = dedupe_chains(chains)
        result.steps_used = steps
        result.elapsed_seconds = time.perf_counter() - started
        return result

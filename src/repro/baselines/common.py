"""Shared plumbing for the baseline detectors."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.chains import GadgetChain

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Output of one baseline run.

    ``terminated`` is False when the tool exhausted its step budget
    before finishing — the ``✗`` cells of Table IX ("the process is not
    terminated", observed for Serianalyzer on Clojure and Jython).
    """

    tool: str
    chains: List[GadgetChain] = field(default_factory=list)
    terminated: bool = True
    elapsed_seconds: float = 0.0
    steps_used: int = 0

    @property
    def result_count(self) -> int:
        return len(self.chains)

    def __repr__(self) -> str:
        status = "ok" if self.terminated else "TIMEOUT"
        return (
            f"<BaselineResult {self.tool}: {len(self.chains)} chains, "
            f"{status}, {self.elapsed_seconds:.2f}s>"
        )

"""GadgetInspector reimplementation (Black Hat 2018 baseline).

Faithful to the original's *strategy* — a forward reachability search
from deserialization entry points over an ASM-built call graph — and to
the three weaknesses §IV-F attributes to it:

1. **Incomplete polymorphism**: virtual dispatch is resolved through
   the superclass *extension* chain only; interface-implementation
   dispatch is not modelled, so chains that hop through an interface
   method (most collection-transformer chains) are missed.
2. **Visited-node skipping**: a method visited once (per source) is
   never re-expanded, even when a second route would reach a sink with
   different argument flow — "helps reduce running costs but may also
   lead to the loss of potential chains".
3. **Optimistic taint**: a value passed into a callee is assumed to
   stay attacker-controllable ("many existing tools default to it not
   changing"), so any syntactic source-to-sink path is reported — the
   root of its ~93% false-positive rate.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.common import BaselineResult
from repro.core.chains import ChainStep, GadgetChain, dedupe_chains
from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod

__all__ = ["GadgetInspector"]


class GadgetInspector:
    """Forward source-to-sink reachability with GI's defects."""

    TOOL_NAME = "gadgetinspector"

    def __init__(
        self,
        classes: Sequence[JavaClass],
        sinks: Optional[SinkCatalog] = None,
        sources: Optional[SourceCatalog] = None,
        max_depth: int = 12,
        step_budget: int = 500_000,
    ):
        self.hierarchy = ClassHierarchy(classes)
        self.sinks = sinks if sinks is not None else SinkCatalog()
        self.sources = sources if sources is not None else SourceCatalog.extended()
        self.max_depth = max_depth
        self.step_budget = step_budget

    # -- call graph (ASM-style, extension-only polymorphism) --------------

    def _dispatch(self, invoke: ir.InvokeExpr) -> List[JavaMethod]:
        """Resolve an invocation — deliberately *without* interface
        dispatch (weakness 1)."""
        if invoke.kind == ir.InvokeKind.DYNAMIC:
            return []
        resolved = self.hierarchy.resolve_method(
            invoke.class_name, invoke.method_name, invoke.arity
        )
        targets: List[JavaMethod] = []
        if resolved is not None:
            targets.append(resolved)
        if invoke.kind in (ir.InvokeKind.VIRTUAL,):
            declared = self.hierarchy.get(invoke.class_name)
            if declared is not None and not declared.is_interface:
                # subclass overrides via extends edges only
                for sub_name in self.hierarchy.subtypes(invoke.class_name):
                    sub = self.hierarchy.get(sub_name)
                    if sub is None or sub.is_interface:
                        continue
                    if not self._extension_reachable(sub_name, invoke.class_name):
                        continue
                    found = sub.find_method(invoke.method_name, invoke.arity)
                    if found is not None and found not in targets:
                        targets.append(found)
        return targets

    def _extension_reachable(self, sub_name: str, super_name: str) -> bool:
        """True when sub derives from super through extends edges only."""
        current = self.hierarchy.get(sub_name)
        while current is not None and current.super_name:
            if current.super_name == super_name:
                return True
            current = self.hierarchy.get(current.super_name)
        return False

    # -- search ------------------------------------------------------------------

    def run(self) -> BaselineResult:
        started = time.perf_counter()
        result = BaselineResult(self.TOOL_NAME)
        chains: List[GadgetChain] = []
        steps = 0

        source_methods = [
            m
            for m in self.hierarchy.all_methods()
            if self.sources.is_source(m, self.hierarchy)
        ]
        for source in source_methods:
            visited: Set[str] = set()  # weakness 2: per-source global set
            stack: List[Tuple[JavaMethod, List[JavaMethod]]] = [(source, [source])]
            while stack:
                steps += 1
                if steps > self.step_budget:
                    result.terminated = False
                    break
                method, path = stack.pop()
                key = method.signature.signature
                if key in visited:
                    continue
                visited.add(key)
                if len(path) > self.max_depth:
                    continue
                for invoke in ir.iter_invoke_exprs(method.body):
                    sink = self.sinks.lookup(invoke.class_name, invoke.method_name)
                    if sink is not None:
                        # weakness 3: no argument-controllability check
                        chains.append(
                            self._chain(path, invoke.class_name, invoke.method_name,
                                        invoke.arity, sink.category,
                                        sink.trigger_condition)
                        )
                        continue
                    for target in self._dispatch(invoke):
                        if target.has_body:
                            stack.append((target, path + [target]))
            if not result.terminated:
                break

        result.chains = dedupe_chains(chains)
        result.steps_used = steps
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _chain(
        self,
        path: List[JavaMethod],
        sink_class: str,
        sink_name: str,
        sink_arity: int,
        category: str,
        tc: Tuple[int, ...],
    ) -> GadgetChain:
        steps = [
            ChainStep(m.class_name, m.name, m.arity, "CALL") for m in path
        ]
        steps.append(ChainStep(sink_class, sink_name, sink_arity))
        return GadgetChain(steps, sink_category=category, trigger_condition=tc)

"""Whole-CPG interprocedural refinement (opt-in post-CPG stage).

Three cooperating layers, all conservative by construction:

* :mod:`repro.analysis.rta` — instantiated-type reachability that marks
  ALIAS/CALL dispatch edges with no constructible receiver
  (``RTA_DEAD`` edge annotations + the path finder's pruning hook);
* :mod:`repro.analysis.taint` — interprocedural field-sensitive taint
  summaries, computed bottom-up over call-graph SCCs on
  :mod:`repro.jvm.dataflow` and cached through the content-hash
  summary-cache machinery;
* :mod:`repro.analysis.chain_refiner` — the verdict layer replaying
  candidate chains against both, classifying each as KEPT /
  REFUTED(reason) / UNKNOWN where UNKNOWN never refutes.
"""

from repro.analysis.chain_refiner import (
    ChainRefiner,
    ChainVerdict,
    REFINE_MODES,
    RefinementResult,
)
from repro.analysis.rta import (
    RTAResult,
    TypeReachability,
    annotate_type_reachability,
    instantiated_types,
)
from repro.analysis.taint import (
    FieldFacts,
    MethodTaintSummary,
    TAINT_TOP,
    TaintSite,
    TaintSummaryEngine,
    UNTAINTED,
)

__all__ = [
    "ChainRefiner",
    "ChainVerdict",
    "REFINE_MODES",
    "RefinementResult",
    "RTAResult",
    "TypeReachability",
    "annotate_type_reachability",
    "instantiated_types",
    "FieldFacts",
    "MethodTaintSummary",
    "TAINT_TOP",
    "TaintSite",
    "TaintSummaryEngine",
    "UNTAINTED",
]

"""Chain-level refinement verdicts: KEPT / REFUTED(reason) / UNKNOWN.

:class:`ChainRefiner` replays each candidate gadget chain against the
whole-program refinement analyses and issues an explainable verdict:

* **rta** — the RTA mirror of the edge annotations
  (:mod:`repro.analysis.rta`): an ALIAS hop dispatching into a class
  with no constructible receiver, or a CALL hop whose every matching
  call site is a virtual/interface dispatch into such a class, refutes
  the chain (``rta-dead-dispatch``);
* **taint** — the interprocedural summaries
  (:mod:`repro.analysis.taint`): starting from a fully
  attacker-controlled source frame, the pollution of every invocation
  position is propagated hop by hop; a chain whose final hop provably
  delivers *no* attacker data to any Trigger-Condition position of the
  sink is refuted (``untainted-sink``).

Soundness is structural: every place the replay loses track — a hop
whose caller has no body, a call site it cannot match, a missing
summary, an empty trigger condition, a terminal ALIAS edge — the frame
degrades to "everything possibly polluted" and the final verdict can
only be KEPT or UNKNOWN.  **UNKNOWN never refutes**, so a chain is
removed only when a whole-program over-approximation of attacker
influence still proves the sink unreachable or clean; the differential
suite asserts zero ground-truth chains are ever refuted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.chains import GadgetChain
from repro.core.refine import RefutationReason
from repro.errors import AnalysisError
from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaMethod

from repro.analysis.rta import TypeReachability
from repro.analysis.taint import (
    TAINT_TOP,
    TaintSummaryEngine,
    TaintValue,
)

__all__ = ["ChainRefiner", "ChainVerdict", "RefinementResult", "REFINE_MODES"]

KEPT = "kept"
REFUTED = "refuted"
UNKNOWN = "unknown"

REFINE_MODES = ("rta", "taint")


@dataclass(frozen=True)
class ChainVerdict:
    """Judgement for one chain."""

    status: str
    reason: Optional[RefutationReason] = None

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"status": self.status}
        if self.reason is not None:
            doc["reason"] = self.reason.as_dict()
        return doc


@dataclass
class RefinementResult:
    """Verdicts for a chain list, order-aligned with the input."""

    chains: List[GadgetChain]
    verdicts: List[ChainVerdict]
    statistics: Dict[str, object] = field(default_factory=dict)

    @property
    def kept(self) -> List[GadgetChain]:
        """Surviving chains — a verbatim, order-preserving subset of the
        input (UNKNOWN survives; only REFUTED is dropped)."""
        return [
            chain
            for chain, verdict in zip(self.chains, self.verdicts)
            if verdict.status != REFUTED
        ]

    @property
    def refuted(self) -> List[Tuple[GadgetChain, RefutationReason]]:
        out: List[Tuple[GadgetChain, RefutationReason]] = []
        for chain, verdict in zip(self.chains, self.verdicts):
            if verdict.status == REFUTED and verdict.reason is not None:
                out.append((chain, verdict.reason))
        return out


#: A replay frame: is each input of the current chain step possibly
#: attacker-controlled?  ``None`` params default means "yes" for any
#: position not explicitly tracked.
class _Frame:
    __slots__ = ("this_tainted", "params")

    def __init__(self, this_tainted: bool, params: Dict[int, bool]):
        self.this_tainted = this_tainted
        self.params = params

    @classmethod
    def all_tainted(cls) -> "_Frame":
        return cls(True, {})

    def param(self, index: int) -> bool:
        return self.params.get(index, True)

    def eval(self, value: TaintValue) -> bool:
        """Whether ``value`` may carry attacker data under this frame."""
        if value is TAINT_TOP:
            return True
        for pos, _fld in value:
            # Channel (0, f) reads a receiver field: polluted iff the
            # receiver object itself is attacker-supplied (trusted and
            # globally-stored fields were already folded away by the
            # summary engine).
            if pos == 0:
                if self.this_tainted:
                    return True
            elif self.param(pos):
                return True
        return False


class ChainRefiner:
    """Replays chains against the refinement analyses (see module doc)."""

    def __init__(
        self,
        hierarchy: ClassHierarchy,
        modes: Sequence[str] = REFINE_MODES,
        cache_dir: Optional[str] = None,
    ):
        bad = sorted(set(modes) - set(REFINE_MODES))
        if bad:
            raise AnalysisError(
                f"unknown refinement mode(s) {', '.join(bad)}; "
                f"valid modes: {', '.join(REFINE_MODES)}"
            )
        if not modes:
            raise AnalysisError("at least one refinement mode is required")
        if not hierarchy.classes:
            raise AnalysisError(
                "chain refinement needs the analyzed class definitions; "
                "a snapshot-loaded CPG has none"
            )
        self.hierarchy = hierarchy
        self.modes = tuple(m for m in REFINE_MODES if m in modes)
        self.types = TypeReachability(hierarchy) if "rta" in self.modes else None
        self.engine = (
            TaintSummaryEngine(hierarchy, cache_dir=cache_dir)
            if "taint" in self.modes
            else None
        )

    # -- shared helpers ----------------------------------------------------

    def _method(self, class_name: str, method_name: str, arity: int
                ) -> Optional[JavaMethod]:
        cls = self.hierarchy.get(class_name)
        if cls is None:
            return None
        return cls.find_method(method_name, arity)

    # -- RTA replay --------------------------------------------------------

    def _rta_refutation(self, chain: GadgetChain) -> Optional[RefutationReason]:
        assert self.types is not None
        hierarchy = self.hierarchy
        for step_index, (step, nxt) in enumerate(zip(chain.steps, chain.steps[1:])):
            if step.edge_to_next == "ALIAS":
                # The backward search traverses ALIAS edges in both
                # directions, so the override (subtype) side may be
                # either endpoint of the hop.
                if hierarchy.is_subtype_of(nxt.class_name, step.class_name):
                    child = nxt.class_name
                elif hierarchy.is_subtype_of(step.class_name, nxt.class_name):
                    child = step.class_name
                else:
                    continue  # not an override pair we can orient: keep
                if hierarchy.get(child) is None:
                    continue  # phantom: conservatively constructible
                if not self.types.class_is_live(child):
                    return RefutationReason(
                        kind="rta-dead-dispatch",
                        step_index=step_index,
                        caller=step.qualified,
                        callee=nxt.qualified,
                        detail=(
                            f"override dispatch requires a receiver of type "
                            f"{child}, but no subtype of it is ever "
                            f"instantiated or deserializable in the closure"
                        ),
                    )
            elif step.edge_to_next == "CALL":
                if hierarchy.get(nxt.class_name) is None:
                    continue  # phantom callee (e.g. a JDK sink): keep
                if self.types.class_is_live(nxt.class_name):
                    continue
                caller = self._method(step.class_name, step.method_name, step.arity)
                if caller is None or not caller.has_body:
                    continue
                matching = [
                    expr
                    for expr in ir.iter_invoke_exprs(caller.body)
                    if expr.method_name == nxt.method_name
                    and expr.arity == nxt.arity
                ]
                if not matching:
                    continue  # cannot see the hop: keep
                dispatching = (ir.InvokeKind.VIRTUAL, ir.InvokeKind.INTERFACE)
                if all(expr.kind in dispatching for expr in matching):
                    return RefutationReason(
                        kind="rta-dead-dispatch",
                        step_index=step_index,
                        caller=step.qualified,
                        callee=nxt.qualified,
                        detail=(
                            f"every matching call site dispatches on a "
                            f"receiver of type {nxt.class_name}, which has no "
                            f"instantiable subtype in the analyzed closure"
                        ),
                    )
        return None

    # -- taint replay ------------------------------------------------------

    def _taint_verdict(self, chain: GadgetChain) -> ChainVerdict:
        assert self.engine is not None
        frame = _Frame.all_tainted()
        last_hop = len(chain.steps) - 2
        for step_index, (step, nxt) in enumerate(zip(chain.steps, chain.steps[1:])):
            final = step_index == last_hop
            if step.edge_to_next != "CALL":
                if final:
                    return ChainVerdict(UNKNOWN)  # no call positions to judge
                continue  # ALIAS hop: same receiver/arguments, frame unchanged
            caller = self._method(step.class_name, step.method_name, step.arity)
            summary = (
                self.engine.summary_for(caller) if caller is not None else None
            )
            if summary is None:
                if final:
                    return ChainVerdict(UNKNOWN)
                frame = _Frame.all_tainted()
                continue
            sites = [
                site
                for site in summary.sites
                if site.method_name == nxt.method_name and site.arity == nxt.arity
            ]
            if not sites:
                if final:
                    return ChainVerdict(UNKNOWN)
                frame = _Frame.all_tainted()
                continue
            width = max(len(site.positions) for site in sites)
            polluted = [
                any(
                    pos < len(site.positions) and frame.eval(site.positions[pos])
                    for site in sites
                )
                for pos in range(width)
            ]
            if final:
                tc = chain.trigger_condition
                if not tc:
                    return ChainVerdict(UNKNOWN)
                if any(pos >= width or polluted[pos] for pos in tc):
                    return ChainVerdict(KEPT)
                clean = ", ".join(str(pos) for pos in tc)
                return ChainVerdict(
                    REFUTED,
                    RefutationReason(
                        kind="untainted-sink",
                        step_index=step_index,
                        caller=step.qualified,
                        callee=nxt.qualified,
                        detail=(
                            f"no attacker-controlled data reaches trigger-"
                            f"condition position(s) {clean} of the sink along "
                            f"any matching call site"
                        ),
                    ),
                )
            frame = _Frame(
                this_tainted=polluted[0] if width > 0 else True,
                params={
                    pos: polluted[pos] for pos in range(1, width)
                },
            )
        return ChainVerdict(UNKNOWN)

    # -- public API --------------------------------------------------------

    def verdict(self, chain: GadgetChain) -> ChainVerdict:
        """Judge one chain: REFUTED beats UNKNOWN beats KEPT."""
        if self.types is not None:
            reason = self._rta_refutation(chain)
            if reason is not None:
                return ChainVerdict(REFUTED, reason)
        if self.engine is not None:
            return self._taint_verdict(chain)
        return ChainVerdict(KEPT)

    def refine(self, chains: Sequence[GadgetChain]) -> RefinementResult:
        started = time.perf_counter()
        ordered = list(chains)
        verdicts = [self.verdict(chain) for chain in ordered]
        counts = {KEPT: 0, REFUTED: 0, UNKNOWN: 0}
        by_kind: Dict[str, int] = {}
        for verdict in verdicts:
            counts[verdict.status] += 1
            if verdict.reason is not None:
                by_kind[verdict.reason.kind] = by_kind.get(verdict.reason.kind, 0) + 1
        statistics: Dict[str, object] = {
            "modes": list(self.modes),
            "chains": len(ordered),
            "kept": counts[KEPT],
            "refuted": counts[REFUTED],
            "unknown": counts[UNKNOWN],
            "refuted_by_kind": dict(sorted(by_kind.items())),
            "seconds": time.perf_counter() - started,
        }
        if self.types is not None:
            statistics["rta_instantiated"] = len(self.types.instantiated)
        if self.engine is not None:
            statistics["taint"] = dict(self.engine.stats)
            if self.engine.cache is not None:
                statistics["taint_cache"] = self.engine.cache.stats.as_row()
        return RefinementResult(
            chains=ordered, verdicts=verdicts, statistics=statistics
        )

"""RTA-style instantiated-type reachability over a built CPG.

Class-hierarchy analysis (the basis of the MAG's ALIAS edges and of
virtual/interface CALL edge resolution, §III-B) admits every subtype a
declaration *could* dispatch to.  Rapid Type Analysis sharpens that:
a dispatch target is realizable only if some receiver of a suitable
runtime type can ever exist.  For the deserialization threat model the
set of constructible runtime types is:

* **allocation sites** — every ``new C`` in any analyzed method body
  (program-made objects);
* **serializable classes** — the attacker writes arbitrary serializable
  object graphs into the stream, so every serializable class in the
  closure is constructible at deserialization time;
* **transient-field declared types** — the deserializer does not restore
  ``transient`` reference fields from attacker bytes; the runtime
  repopulates them with a trusted instance of the *declared* type
  (exactly what the verification oracle in :mod:`repro.verify.poc`
  models), so those declared types are constructible too.

A class is *live* when it is phantom (outside the analyzed closure —
unknown code is conservatively constructible), ``java.lang.Object``, in
the instantiated set, or has any transitive subtype in the set.  An
ALIAS edge is dead when its override-side (subtype) class is not live:
no constructible receiver can make the override the dispatch target.  A
virtual/interface CALL edge is dead when the callee's declaring class is
defined but not live: no constructible receiver subtype exists at all.
``invokestatic``/``invokespecial`` edges never dispatch on a receiver
type and are never marked.

:func:`annotate_type_reachability` writes the verdicts onto the graph as
a boolean ``RTA_DEAD`` relationship property (absent = live), backed by
a relationship-property index so consumers —
:class:`~repro.analysis.chain_refiner.ChainRefiner`, ``cpg_check``, the
path finder's ``skip_rta_dead`` pruning hook — can enumerate annotated
edges without scanning the edge set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from repro.core.cpg import ALIAS, CALL, CPG, RTA_DEAD
from repro.errors import AnalysisError
from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy

__all__ = [
    "RTAResult",
    "TypeReachability",
    "annotate_type_reachability",
    "instantiated_types",
]


def instantiated_types(hierarchy: ClassHierarchy) -> FrozenSet[str]:
    """The constructible-type seed set (see the module docstring)."""
    live: Set[str] = set()
    for cls in hierarchy.classes:
        for method in cls.methods.values():
            for stmt in method.body:
                rhs = getattr(stmt, "rhs", None)
                if isinstance(rhs, ir.NewExpr):
                    live.add(rhs.class_name)
    for cls in hierarchy.classes:
        if not hierarchy.is_serializable(cls.name):
            continue
        live.add(cls.name)
        for fld in cls.fields.values():
            if fld.is_static:
                continue
            if fld.is_transient and fld.type.is_reference:
                live.add(fld.type.name)
    return frozenset(live)


class TypeReachability:
    """Memoised liveness queries against one hierarchy's seed set."""

    def __init__(self, hierarchy: ClassHierarchy):
        self.hierarchy = hierarchy
        self.instantiated = instantiated_types(hierarchy)
        self._live_cache: Dict[str, bool] = {}

    def class_is_live(self, class_name: Optional[str]) -> bool:
        """Whether any constructible type can serve as a ``class_name``
        receiver.  Unknown (phantom) classes are conservatively live."""
        if class_name is None:
            return True
        cached = self._live_cache.get(class_name)
        if cached is not None:
            return cached
        hierarchy = self.hierarchy
        if class_name == "java.lang.Object" or hierarchy.get(class_name) is None:
            live = True
        elif class_name in self.instantiated:
            live = True
        else:
            live = any(
                sub in self.instantiated for sub in hierarchy.subtypes(class_name)
            )
        self._live_cache[class_name] = live
        return live


@dataclass
class RTAResult:
    """Outcome of one :func:`annotate_type_reachability` pass."""

    instantiated_count: int = 0
    alias_edges: int = 0
    call_edges: int = 0
    dead_alias_edges: int = 0
    dead_call_edges: int = 0
    seconds: float = 0.0

    @property
    def dead_edges(self) -> int:
        return self.dead_alias_edges + self.dead_call_edges

    def as_dict(self) -> Dict[str, object]:
        return {
            "instantiated_count": self.instantiated_count,
            "alias_edges": self.alias_edges,
            "call_edges": self.call_edges,
            "dead_alias_edges": self.dead_alias_edges,
            "dead_call_edges": self.dead_call_edges,
            "seconds": self.seconds,
        }


#: CALL edge kinds that dispatch on the receiver's runtime type
_DISPATCH_KINDS = (ir.InvokeKind.VIRTUAL, ir.InvokeKind.INTERFACE)


def annotate_type_reachability(
    cpg: CPG, types: Optional[TypeReachability] = None
) -> RTAResult:
    """Mark every RTA-dead dispatch edge of ``cpg`` with ``RTA_DEAD``.

    Idempotent: re-running recomputes the same verdicts.  Requires the
    original class definitions (a snapshot-loaded CPG has an empty
    hierarchy, so the seed set would be empty and *every* defined-class
    dispatch would look dead — refuse instead of being wrong).
    """
    hierarchy = cpg.hierarchy
    if not hierarchy.classes:
        raise AnalysisError(
            "RTA refinement needs the analyzed classes; a snapshot-loaded "
            "CPG carries no class bodies to seed the instantiated-type set"
        )
    types = types if types is not None else TypeReachability(hierarchy)
    graph = cpg.graph
    graph.create_relationship_index(RTA_DEAD)
    started = time.perf_counter()
    result = RTAResult(instantiated_count=len(types.instantiated))
    for rel in graph.relationships(ALIAS):
        result.alias_edges += 1
        child_class = graph.node(rel.start_id).get("CLASSNAME")
        if not types.class_is_live(child_class):
            graph.set_relationship_property(rel, RTA_DEAD, True)
            result.dead_alias_edges += 1
    for rel in graph.relationships(CALL):
        result.call_edges += 1
        if rel.get("KIND") not in _DISPATCH_KINDS:
            continue
        callee_class = graph.node(rel.end_id).get("CLASSNAME")
        if not types.class_is_live(callee_class):
            graph.set_relationship_property(rel, RTA_DEAD, True)
            result.dead_call_edges += 1
    result.seconds = time.perf_counter() - started
    return result

"""Interprocedural field-sensitive taint summaries.

The CPG's per-edge ``POLLUTED_POSITION`` arrays (§III-C) record which
argument slots of each call *could* carry attacker data, judged one
method at a time.  This module computes something stronger: a
per-method **pollution transfer function** — for every method, which of
its input channels (receiver, receiver fields, parameters) can flow to
its return value, into the heap, and into each call site it contains —
by running a taint lattice through :mod:`repro.jvm.dataflow`'s worklist
engine and composing callee summaries bottom-up over the strongly
connected components of the call graph.

Taint values
------------

A taint value is either the distinguished top element :data:`TAINT_TOP`
("may be attacker-controlled through channels we do not track") or a
frozenset of *channels*, each naming an input of the summarised method:

* ``(0, None)`` — the receiver (``this``);
* ``(0, f)``    — field ``f`` of the receiver (depth-1 field
  sensitivity, matching the paper's ``this.field`` pollution sources);
* ``(i, None)`` — the i-th parameter (1-based, like ``@param-i``).

The empty frozenset is *untainted*: provably not attacker-controlled no
matter what the caller passes.  Join is set union with TOP absorbing.
Refutation logic only ever trusts the empty set — TOP and any non-empty
channel set count as "possibly polluted" — so every approximation in
this module errs toward keeping chains.

Field trust
-----------

:class:`FieldFacts` classifies instance-field names over the whole
analysed closure: a field is **trusted** when every declaration of that
name is ``transient`` *and* reference-typed *and* no statement anywhere
stores to it — deserialization repopulates such fields with a trusted
instance of the declared type (exactly the semantics of the
verification oracle in :mod:`repro.verify.poc`), so reading one yields
clean data.  A field stored *anywhere* reads as TOP (no may-alias
reasoning); anything else collapses the base's channels (reading ``f``
off the receiver yields ``(0, f)``).  Primitive transient fields are
deliberately *not* trusted: the oracle lets attacker bytes through for
them.

Summaries are cached on disk with the same content-hash keying as the
controllability summary cache (:mod:`repro.core.summary_cache`); the
cache token additionally folds in a digest of the field facts, which
are a whole-closure property not covered by per-class dependency
closures.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.summary_cache import SummaryCache, dependency_closures
from repro.jvm import ir
from repro.jvm.cfg import ControlFlowGraph, build_cfg
from repro.jvm.dataflow import DataflowAnalysis, run_analysis
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaMethod

__all__ = [
    "TAINT_TOP",
    "UNTAINTED",
    "Channel",
    "TaintValue",
    "FieldFacts",
    "TaintSite",
    "MethodTaintSummary",
    "TaintSummaryEngine",
    "join_values",
    "method_key",
]


class _Top:
    """Singleton absorbing element of the taint lattice."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TAINT_TOP"


TAINT_TOP = _Top()

Channel = Tuple[int, Optional[str]]
TaintValue = Union[_Top, FrozenSet[Channel]]

UNTAINTED: TaintValue = frozenset()

THIS_CHANNEL: Channel = (0, None)


def join_values(a: TaintValue, b: TaintValue) -> TaintValue:
    if a is TAINT_TOP or b is TAINT_TOP:
        return TAINT_TOP
    return a | b


def is_untainted(value: TaintValue) -> bool:
    """Definitely clean: not TOP and no contributing channel."""
    return value is not TAINT_TOP and not value


def encode_value(value: TaintValue) -> Any:
    """JSON-encodable form of a taint value (for the on-disk cache)."""
    if value is TAINT_TOP:
        return "TOP"
    return [[pos, field] for pos, field in sorted(value, key=_channel_key)]


def decode_value(doc: Any) -> TaintValue:
    if doc == "TOP":
        return TAINT_TOP
    return frozenset((int(pos), field) for pos, field in doc)


def _channel_key(channel: Channel) -> Tuple[int, str]:
    pos, field = channel
    return (pos, field if field is not None else "")


def method_key(method: JavaMethod) -> str:
    """Deterministic summary key — the Soot-style full signature."""
    return method.signature.signature


# ---------------------------------------------------------------------------
# Whole-closure field facts
# ---------------------------------------------------------------------------


class FieldFacts:
    """Trust classification of instance-field names across a closure."""

    def __init__(self, trusted: FrozenSet[str], stored: FrozenSet[str]):
        self.trusted = trusted
        self.stored = stored

    @classmethod
    def compute(cls, hierarchy: ClassHierarchy) -> "FieldFacts":
        stored: Set[str] = set()
        for method in hierarchy.all_methods():
            for stmt in method.body:
                if isinstance(stmt, ir.AssignStmt) and isinstance(
                    stmt.target, ir.InstanceFieldRef
                ):
                    stored.add(stmt.target.field_name)
        # A name is trusted only if *every* declaration bearing it is a
        # transient reference field: mixed declarations across classes
        # would let the by-name field read trust the wrong one.
        always_trusted: Dict[str, bool] = {}
        for klass in hierarchy.classes:
            for field in klass.fields.values():
                if field.is_static:
                    continue
                ok = field.is_transient and field.type.is_reference
                always_trusted[field.name] = always_trusted.get(field.name, True) and ok
        trusted = frozenset(
            name
            for name, ok in always_trusted.items()
            if ok and name not in stored
        )
        return cls(trusted=trusted, stored=frozenset(stored))

    def digest(self) -> str:
        """Content hash folded into the summary-cache token."""
        doc = json.dumps(
            {"trusted": sorted(self.trusted), "stored": sorted(self.stored)},
            sort_keys=True,
        )
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def read_field(self, field_name: str, base: TaintValue) -> TaintValue:
        """Taint of ``base.field_name`` given the base object's taint."""
        if field_name in self.trusted:
            return UNTAINTED
        if field_name in self.stored:
            return TAINT_TOP
        if base is TAINT_TOP:
            return TAINT_TOP
        out: Set[Channel] = set()
        for pos, field in base:
            if (pos, field) == THIS_CHANNEL:
                out.add((0, field_name))
            else:
                # A field of a parameter / of another field: beyond the
                # depth-1 channels, so fall back to the base channel
                # itself (caller-polluted base => possibly polluted read).
                out.add((pos, field))
        return frozenset(out)


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaintSite:
    """One call site inside a summarised method, with the taint reaching
    each invocation position (0 = receiver, i = i-th argument) expressed
    in the *summarised method's* input channels."""

    block_index: int
    class_name: str
    method_name: str
    arity: int
    kind: str
    positions: Tuple[TaintValue, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "block_index": self.block_index,
            "class_name": self.class_name,
            "method_name": self.method_name,
            "arity": self.arity,
            "kind": self.kind,
            "positions": [encode_value(v) for v in self.positions],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TaintSite":
        return cls(
            block_index=int(doc["block_index"]),
            class_name=doc["class_name"],
            method_name=doc["method_name"],
            arity=int(doc["arity"]),
            kind=doc["kind"],
            positions=tuple(decode_value(v) for v in doc["positions"]),
        )


@dataclass(frozen=True)
class MethodTaintSummary:
    """Pollution transfer function of one method."""

    key: str
    returns: TaintValue
    field_effect: TaintValue
    sites: Tuple[TaintSite, ...]

    def as_dict(self) -> Dict[str, Any]:
        # "subsig" (not "key") so the records pass the shared
        # SummaryCache schema check on load
        return {
            "subsig": self.key,
            "returns": encode_value(self.returns),
            "field_effect": encode_value(self.field_effect),
            "sites": [site.as_dict() for site in self.sites],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "MethodTaintSummary":
        return cls(
            key=doc["subsig"],
            returns=decode_value(doc["returns"]),
            field_effect=decode_value(doc["field_effect"]),
            sites=tuple(TaintSite.from_dict(s) for s in doc["sites"]),
        )


def _bottom_summary(key: str) -> MethodTaintSummary:
    return MethodTaintSummary(
        key=key, returns=UNTAINTED, field_effect=UNTAINTED, sites=()
    )


def compose_value(
    value: TaintValue,
    positions: Sequence[TaintValue],
    facts: FieldFacts,
) -> TaintValue:
    """Rewrite a callee-frame taint value into caller-frame terms, given
    the taint reaching each invocation position."""
    if value is TAINT_TOP:
        return TAINT_TOP
    out: TaintValue = UNTAINTED
    for pos, field in sorted(value, key=_channel_key):
        if pos >= len(positions):
            contribution: TaintValue = TAINT_TOP
        elif field is None:
            contribution = positions[pos]
        else:
            contribution = facts.read_field(field, positions[pos])
        out = join_values(out, contribution)
        if out is TAINT_TOP:
            return TAINT_TOP
    return out


# ---------------------------------------------------------------------------
# The per-method dataflow pass
# ---------------------------------------------------------------------------

# State maps ("l", local_name) -> TaintValue plus one accumulator key
# ("f", "*") holding the join of everything the method (or its callees)
# may have written into the heap so far along the path: after an opaque
# call, otherwise-clean field reads must count as possibly polluted.
_STAR = ("f", "*")


class _MethodTaint(DataflowAnalysis):
    """Forward taint propagation through one method body.

    ``resolve`` maps an :class:`~repro.jvm.ir.InvokeExpr` to the (joined)
    summary of its possible targets, or ``None`` when any target is
    unknown or bodiless — which the transfer function treats as TOP."""

    direction = "forward"

    def __init__(
        self,
        facts: FieldFacts,
        resolve: Callable[[ir.InvokeExpr], Optional[MethodTaintSummary]],
    ):
        self.facts = facts
        self.resolve = resolve

    def bottom(self, cfg: ControlFlowGraph) -> Dict[Tuple[str, str], TaintValue]:
        return {}

    def boundary(self, cfg: ControlFlowGraph) -> Dict[Tuple[str, str], TaintValue]:
        return {}

    def join(self, a, b):
        out: Dict[Tuple[str, str], TaintValue] = {}
        for key in sorted(set(a) | set(b)):
            out[key] = join_values(a.get(key, UNTAINTED), b.get(key, UNTAINTED))
        return out

    def eval_value(self, value: ir.Value, state) -> TaintValue:
        if isinstance(value, ir.Local):
            return state.get(("l", value.name), UNTAINTED)
        if isinstance(value, ir.ThisRef):
            return frozenset({THIS_CHANNEL})
        if isinstance(value, ir.ParamRef):
            return frozenset({(value.index, None)})
        if isinstance(value, ir.Constant):
            return UNTAINTED
        if isinstance(value, ir.InstanceFieldRef):
            base = self.eval_value(value.base, state)
            read = self.facts.read_field(value.field_name, base)
            # Heap writes by opaque callees may hide behind any
            # non-trusted field, so fold in the effect accumulator.
            if value.field_name in self.facts.trusted:
                return read
            return join_values(read, state.get(_STAR, UNTAINTED))
        if isinstance(value, (ir.StaticFieldRef, ir.ArrayRef)):
            return TAINT_TOP
        if isinstance(value, ir.CastExpr):
            return self.eval_value(value.op, state)
        if isinstance(value, ir.InstanceOfExpr):
            return self.eval_value(value.op, state)
        if isinstance(value, ir.BinOpExpr):
            return join_values(
                self.eval_value(value.left, state),
                self.eval_value(value.right, state),
            )
        if isinstance(value, (ir.NewExpr, ir.NewArrayExpr)):
            return UNTAINTED
        if isinstance(value, ir.InvokeExpr):
            return self._invoke_result(value, state)
        return TAINT_TOP

    def invoke_positions(self, expr: ir.InvokeExpr, state) -> Tuple[TaintValue, ...]:
        receiver = (
            self.eval_value(expr.base, state)
            if expr.base is not None
            else UNTAINTED
        )
        return (receiver,) + tuple(self.eval_value(a, state) for a in expr.args)

    def _invoke_result(self, expr: ir.InvokeExpr, state) -> TaintValue:
        summary = self.resolve(expr)
        if summary is None:
            return TAINT_TOP
        return compose_value(
            summary.returns, self.invoke_positions(expr, state), self.facts
        )

    def _invoke_effect(self, expr: ir.InvokeExpr, state) -> TaintValue:
        summary = self.resolve(expr)
        if summary is None:
            return TAINT_TOP
        return compose_value(
            summary.field_effect, self.invoke_positions(expr, state), self.facts
        )

    def transfer(self, stmt: ir.Statement, state):
        if isinstance(stmt, ir.IdentityStmt):
            out = dict(state)
            out[("l", stmt.local.name)] = self.eval_value(stmt.ref, state)
            return out
        if isinstance(stmt, ir.AssignStmt):
            out = dict(state)
            if isinstance(stmt.rhs, ir.InvokeExpr):
                out[_STAR] = join_values(
                    out.get(_STAR, UNTAINTED), self._invoke_effect(stmt.rhs, state)
                )
            if isinstance(stmt.target, ir.Local):
                out[("l", stmt.target.name)] = self.eval_value(stmt.rhs, state)
            else:
                # Store into a field / array / static: weak heap update.
                out[_STAR] = join_values(
                    out.get(_STAR, UNTAINTED), self.eval_value(stmt.rhs, state)
                )
            return out
        if isinstance(stmt, ir.InvokeStmt):
            out = dict(state)
            out[_STAR] = join_values(
                out.get(_STAR, UNTAINTED), self._invoke_effect(stmt.expr, state)
            )
            return out
        return state


# ---------------------------------------------------------------------------
# The engine: bottom-up SCC fixpoint with on-disk caching
# ---------------------------------------------------------------------------


class TaintSummaryEngine:
    """Computes (and memoises) :class:`MethodTaintSummary` per method.

    Summaries are finalized bottom-up over the strongly connected
    components of the body-level call graph (iterative Tarjan from the
    requested method, so only the reachable cone is ever analysed).
    Mutually recursive methods — one SCC — are Kleene-iterated from the
    bottom summary until jointly stable; ``scc_order`` lets tests
    permute the in-SCC visit order (the fixpoint is order-independent,
    pinned by a hypothesis property).

    With ``cache_dir`` set, summaries are persisted per class through
    :class:`repro.core.summary_cache.SummaryCache`, keyed by the
    dependency-closure content hash plus a digest of the whole-closure
    field facts.
    """

    def __init__(
        self,
        hierarchy: ClassHierarchy,
        cache_dir: Optional[str] = None,
        scc_order: Optional[
            Callable[[List[JavaMethod]], List[JavaMethod]]
        ] = None,
    ):
        self.hierarchy = hierarchy
        self.facts = FieldFacts.compute(hierarchy)
        self.scc_order = scc_order
        self._summaries: Dict[str, MethodTaintSummary] = {}
        self._finalized: Set[str] = set()
        self._callees_cache: Dict[str, List[JavaMethod]] = {}
        self.stats: Dict[str, int] = {"methods": 0, "sccs": 0, "iterations": 0}
        self.cache: Optional[SummaryCache] = None
        self._class_keys: Dict[str, str] = {}
        self._stored_classes: Set[str] = set()
        self._probed_classes: Set[str] = set()
        if cache_dir is not None:
            self.cache = SummaryCache(
                cache_dir, catalog_token=f"taint:{self.facts.digest()}"
            )
            from repro.jvm.jasm import dump_class

            class_texts = {
                cls.name: dump_class(cls) for cls in hierarchy.classes
            }
            closures = dependency_closures(hierarchy)
            self._class_keys = {
                cls.name: self.cache.class_key(
                    cls.name, class_texts, closures[cls.name]
                )
                for cls in hierarchy.classes
            }

    # -- public API --------------------------------------------------------

    def summary_for(self, method: JavaMethod) -> Optional[MethodTaintSummary]:
        """The summary of ``method``, or ``None`` when it has no body."""
        if not method.has_body:
            return None
        key = method_key(method)
        if key not in self._finalized:
            self._finalize_cone(method)
        return self._summaries[key]

    def compute_all(self) -> Dict[str, MethodTaintSummary]:
        """Finalize every body-method in the hierarchy (lint, tests)."""
        for method in sorted(self.hierarchy.all_methods(), key=method_key):
            if method.has_body:
                self.summary_for(method)
        return dict(self._summaries)

    # -- call-graph structure ----------------------------------------------

    def _callees(self, method: JavaMethod) -> List[JavaMethod]:
        key = method_key(method)
        cached = self._callees_cache.get(key)
        if cached is not None:
            return cached
        out: Dict[str, JavaMethod] = {}
        for expr in ir.iter_invoke_exprs(method.body):
            for target in self._targets(expr) or ():
                if target.has_body:
                    out.setdefault(method_key(target), target)
        ordered = [out[k] for k in sorted(out)]
        self._callees_cache[key] = ordered
        return ordered

    def _targets(self, expr: ir.InvokeExpr) -> Optional[List[JavaMethod]]:
        """Possible concrete targets, or ``None`` when unresolvable (a
        dynamic site, a phantom callee, or any bodiless candidate)."""
        if expr.kind == ir.InvokeKind.DYNAMIC:
            return None
        if expr.kind in (ir.InvokeKind.STATIC, ir.InvokeKind.SPECIAL):
            target = self.hierarchy.resolve_method(
                expr.class_name, expr.method_name, expr.arity
            )
            if target is None or not target.has_body:
                return None
            return [target]
        targets = self.hierarchy.dispatch_targets(
            expr.class_name, expr.method_name, expr.arity
        )
        if not targets or any(not t.has_body for t in targets):
            return None
        return targets

    def _resolve(self, expr: ir.InvokeExpr) -> Optional[MethodTaintSummary]:
        """Joined summary of all possible targets (TOP via ``None`` when
        any target is unknown or not yet entered into the fixpoint)."""
        targets = self._targets(expr)
        if targets is None:
            return None
        joined: Optional[MethodTaintSummary] = None
        returns: TaintValue = UNTAINTED
        effect: TaintValue = UNTAINTED
        for target in targets:
            summary = self._summaries.get(method_key(target))
            if summary is None:
                return None
            joined = summary
            returns = join_values(returns, summary.returns)
            effect = join_values(effect, summary.field_effect)
        if joined is None:
            return None
        if len(targets) == 1:
            return joined
        return MethodTaintSummary(
            key="<joined>", returns=returns, field_effect=effect, sites=()
        )

    # -- bottom-up SCC fixpoint --------------------------------------------

    def _finalize_cone(self, root: JavaMethod) -> None:
        """Iterative Tarjan from ``root`` over the body-level call graph,
        finalizing each SCC as it is popped (callees-first order)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[JavaMethod] = []
        counter = [0]

        # Explicit DFS frames: (method, key, iterator position).
        frames: List[Tuple[JavaMethod, str, int]] = []

        def push(method: JavaMethod) -> None:
            key = method_key(method)
            index[key] = lowlink[key] = counter[0]
            counter[0] += 1
            stack.append(method)
            on_stack.add(key)
            frames.append((method, key, 0))

        root_key = method_key(root)
        if root_key in self._finalized:
            return
        self._load_class_cache(root.class_name)
        if root_key in self._finalized:
            return
        push(root)
        while frames:
            method, key, pos = frames.pop()
            callees = self._callees(method)
            advanced = False
            while pos < len(callees):
                callee = callees[pos]
                callee_key = method_key(callee)
                pos += 1
                if callee_key in self._finalized:
                    continue
                if callee_key not in index:
                    self._load_class_cache(callee.class_name)
                    if callee_key in self._finalized:
                        continue
                    frames.append((method, key, pos))
                    push(callee)
                    advanced = True
                    break
                if callee_key in on_stack:
                    lowlink[key] = min(lowlink[key], index[callee_key])
            if advanced:
                continue
            if lowlink[key] == index[key]:
                component: List[JavaMethod] = []
                while True:
                    member = stack.pop()
                    member_key = method_key(member)
                    on_stack.discard(member_key)
                    component.append(member)
                    if member_key == key:
                        break
                self._finalize_scc(component)
            if frames:
                parent_key = frames[-1][1]
                lowlink[parent_key] = min(lowlink[parent_key], lowlink[key])

    def _finalize_scc(self, component: List[JavaMethod]) -> None:
        members = sorted(component, key=method_key)
        if self.scc_order is not None:
            members = list(self.scc_order(list(members)))
        self.stats["sccs"] += 1
        for member in members:
            self._summaries[method_key(member)] = _bottom_summary(
                method_key(member)
            )
        changed = True
        while changed:
            changed = False
            self.stats["iterations"] += 1
            for member in members:
                key = method_key(member)
                summary = self._summarise(member)
                if summary != self._summaries[key]:
                    self._summaries[key] = summary
                    changed = True
        for member in members:
            self._finalized.add(method_key(member))
            self.stats["methods"] += 1
        if self.cache is not None:
            for class_name in sorted({m.class_name for m in members}):
                self._maybe_store_class(class_name)

    def _summarise(self, method: JavaMethod) -> MethodTaintSummary:
        analysis = _MethodTaint(self.facts, self._resolve)
        result = run_analysis(build_cfg(method), analysis)
        returns: TaintValue = UNTAINTED
        effect: TaintValue = UNTAINTED
        sites: List[TaintSite] = []
        for block in result.cfg.blocks:
            if block.index not in result.reached:
                continue
            effect = join_values(
                effect, result.block_out[block.index].get(_STAR, UNTAINTED)
            )
            for stmt, before, _after in result.statement_states(block):
                expr = stmt.invoke_expr()
                if expr is not None:
                    sites.append(
                        TaintSite(
                            block_index=block.index,
                            class_name=expr.class_name,
                            method_name=expr.method_name,
                            arity=expr.arity,
                            kind=expr.kind,
                            positions=analysis.invoke_positions(expr, before),
                        )
                    )
                if isinstance(stmt, ir.ReturnStmt) and stmt.value is not None:
                    returns = join_values(
                        returns, analysis.eval_value(stmt.value, before)
                    )
        return MethodTaintSummary(
            key=method_key(method),
            returns=returns,
            field_effect=effect,
            sites=tuple(sites),
        )

    # -- on-disk cache -----------------------------------------------------

    def invalidate_classes(self, class_names: Iterable[str]) -> int:
        """Drop the on-disk taint summaries of the given classes.

        The incremental analyzer calls this when a class's dependency
        closure changes: the class's content key maps to its cache
        entry, which is deleted so the next engine over the new version
        recomputes instead of serving a stale summary.  In-memory state
        for the class is reset too (probed/stored markers and any
        finalized summaries of its methods).  Returns the number of
        on-disk entries actually removed.
        """
        names = list(class_names)
        removed = 0
        if self.cache is not None:
            keys = [
                self._class_keys[name]
                for name in names
                if name in self._class_keys
            ]
            removed = self.cache.invalidate(keys)
        for name in names:
            self._probed_classes.discard(name)
            self._stored_classes.discard(name)
            cls = self.hierarchy.get(name)
            if cls is None:
                continue
            for method in cls.methods.values():
                key = method_key(method)
                self._finalized.discard(key)
                self._summaries.pop(key, None)
        return removed

    def _load_class_cache(self, class_name: str) -> None:
        if self.cache is None or class_name in self._probed_classes:
            return
        self._probed_classes.add(class_name)
        key = self._class_keys.get(class_name)
        if key is None:
            return
        records = self.cache.load(key, class_name)
        if records is None:
            return
        self._stored_classes.add(class_name)
        for record in records:
            summary = MethodTaintSummary.from_dict(record)
            self._summaries[summary.key] = summary
            self._finalized.add(summary.key)

    def _maybe_store_class(self, class_name: str) -> None:
        if self.cache is None or class_name in self._stored_classes:
            return
        cls = self.hierarchy.get(class_name)
        key = self._class_keys.get(class_name)
        if cls is None or key is None:
            return
        body_keys = [
            method_key(m) for m in cls.methods.values() if m.has_body
        ]
        if not all(k in self._finalized for k in body_keys):
            return
        records = [
            self._summaries[k].as_dict() for k in sorted(body_keys)
        ]
        self.cache.store(key, class_name, records)
        self._stored_classes.add(class_name)

"""Exception hierarchy for the Tabby reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
one base type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TypeModelError(ReproError):
    """Raised for malformed Java type descriptors or type operations."""


class ClassModelError(ReproError):
    """Raised for inconsistent class/method/field model construction."""


class IRError(ReproError):
    """Raised for malformed IR statements or values."""


class JasmSyntaxError(ReproError):
    """Raised by the jasm lexer/parser on malformed textual IR.

    Carries the ``line`` and ``column`` of the offending token when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - trivial
        base = super().__str__()
        if self.line:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class JarError(ReproError):
    """Raised when a jar archive cannot be read or written."""


class HierarchyError(ReproError):
    """Raised when class-hierarchy resolution fails (e.g. missing class)."""


class CFGError(ReproError):
    """Raised when a control-flow graph cannot be constructed."""


class GraphError(ReproError):
    """Base error for the embedded property-graph database."""


class NodeNotFoundError(GraphError):
    """Raised when a node id does not exist in the graph."""


class RelationshipNotFoundError(GraphError):
    """Raised when a relationship id does not exist in the graph."""


class QuerySyntaxError(GraphError):
    """Raised by the Cypher-subset parser on malformed queries."""

    def __init__(self, message: str, position: int = 0):
        super().__init__(message)
        self.position = position


class QueryExecutionError(GraphError):
    """Raised when a syntactically valid query cannot be executed."""


class StorageError(GraphError):
    """Raised when graph persistence fails."""


class AnalysisError(ReproError):
    """Raised by the controllability analysis on internal inconsistency."""


class PathFinderError(ReproError):
    """Raised by the gadget-chain finder on invalid configuration."""


class CorpusError(ReproError):
    """Raised when a synthetic corpus component is malformed."""


class VerificationError(ReproError):
    """Raised by the PoC oracle when a chain cannot be interpreted."""


class InterpreterError(ReproError):
    """Raised by the abstract interpreter on unsupported programs."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness on invalid configuration."""


class IncrementalError(ReproError):
    """Raised when an in-place CPG patch cannot be proven equivalent to
    a cold rebuild; the incremental analyzer falls back to rebuilding."""

"""Payload synthesis — the paper's §V-C future work, implemented.

"Currently, Tabby cannot automatically generate malicious input
payloads based on the identified gadget chains" — this module does,
for the jasm corpus: given a verified chain, it derives the **attacker
object graph** a deserialization exploit would serialise: which class
to instantiate at the root, which field of each object must hold which
next gadget instance, and where the attacker's command string lands.

The synthesis walks the chain like the PoC oracle does, but instead of
checking feasibility it records *why* each hop's receiver is
attacker-reachable: the access path (``this.field``, ``this.field[0]``,
a callee return, ...) from the current gadget object to the value that
dispatches the next hop.  The result is a nested :class:`PayloadNode`
tree, renderable as JSON (for tooling) or as a ysoserial-style recipe
(for humans).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.chains import ChainStep, GadgetChain
from repro.core.sinks import SinkCatalog
from repro.errors import VerificationError
from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod

__all__ = ["PayloadNode", "PayloadSpec", "PayloadSynthesizer"]

#: the placeholder planted in Trigger_Condition positions
ATTACKER_VALUE = "${attacker-controlled}"


@dataclass
class PayloadNode:
    """One object in the attacker graph."""

    class_name: str
    #: field name -> nested gadget object or attacker scalar marker
    fields: Dict[str, "PayloadNode | str"] = field(default_factory=dict)
    #: arrays: field name -> element list (depth-1, as in the corpus)
    note: str = ""

    def to_jsonable(self) -> Dict[str, object]:
        out: Dict[str, object] = {"class": self.class_name}
        if self.note:
            out["note"] = self.note
        if self.fields:
            out["fields"] = {
                name: value.to_jsonable() if isinstance(value, PayloadNode) else value
                for name, value in self.fields.items()
            }
        return out


@dataclass
class PayloadSpec:
    """A synthesised exploit recipe for one gadget chain."""

    chain: GadgetChain
    root: PayloadNode
    trigger: str  # how the deserializer reaches the source method

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "trigger": self.trigger,
                "sink": f"{self.chain.sink.qualified}()",
                "object_graph": self.root.to_jsonable(),
            },
            indent=indent,
        )

    def render(self) -> str:
        """A ysoserial-style human recipe."""
        lines = [
            f"exploit recipe for {self.chain.sink.qualified}() "
            f"[{self.chain.sink_category}]",
            f"trigger: {self.trigger}",
            "serialize:",
        ]
        lines.extend(self._render_node(self.root, depth=1))
        return "\n".join(lines)

    def _render_node(self, node: "PayloadNode | str", depth: int) -> List[str]:
        pad = "  " * depth
        if isinstance(node, str):
            return [f"{pad}{node}"]
        lines = [f"{pad}new {node.class_name}" + (f"  // {node.note}" if node.note else "")]
        for name, value in node.fields.items():
            if isinstance(value, PayloadNode):
                lines.append(f"{pad}  .{name} =")
                lines.extend(self._render_node(value, depth + 2))
            else:
                lines.append(f"{pad}  .{name} = {value}")
        return lines


_SOURCE_TRIGGERS = {
    "readObject": "native deserialization (ObjectInputStream.readObject)",
    "readExternal": "native deserialization (Externalizable)",
    "readResolve": "native deserialization (readResolve hook)",
    "readObjectNoData": "native deserialization (readObjectNoData hook)",
    "validateObject": "native deserialization (ObjectInputValidation)",
    "finalize": "garbage-collection of the deserialized object",
    "hashCode": "reconstruction of a hash-keyed collection (e.g. HashMap)",
    "equals": "key comparison during collection reconstruction",
    "compareTo": "reconstruction of an ordered collection",
    "toString": "marshalling-framework string coercion",
}


class PayloadSynthesizer:
    """Derives attacker object graphs from gadget chains."""

    def __init__(
        self,
        classes: Sequence[JavaClass],
        sinks: Optional[SinkCatalog] = None,
    ):
        self.hierarchy = ClassHierarchy(classes)
        self.sinks = sinks if sinks is not None else SinkCatalog()

    # -- public -------------------------------------------------------------

    def synthesize(self, chain: GadgetChain) -> PayloadSpec:
        """Build the payload recipe for ``chain``.

        Raises :class:`VerificationError` when the chain's data flow
        cannot be statically recovered (e.g. the source has no body).
        Synthesis does not re-check feasibility — run the chain through
        :class:`~repro.verify.poc.ChainVerifier` first.
        """
        source = chain.source
        root = PayloadNode(source.class_name, note="chain entry point")
        trigger = _SOURCE_TRIGGERS.get(
            source.method_name, f"invocation of {source.method_name}()"
        )
        self._populate(root, list(chain.steps), 0)
        return PayloadSpec(chain=chain, root=root, trigger=trigger)

    # -- hop walking -----------------------------------------------------------

    def _populate(
        self,
        node: PayloadNode,
        steps: List[ChainStep],
        index: int,
        param_seeds: Optional[Dict[int, Tuple[PayloadNode, List[str]]]] = None,
    ) -> None:
        """Fill the object graph so that steps[index] (executing in the
        gadget ``node``) dispatches steps[index+1...].

        ``param_seeds`` maps the executing method's 1-based parameter
        indexes to (owner node, access path) pairs from the caller frame
        — how data threads across static hops and helper calls.
        """
        if index >= len(steps) - 1:
            return
        method = self._executing_method(steps[index])
        if method is None:
            raise VerificationError(
                f"cannot synthesise: {steps[index].qualified} has no body"
            )
        next_index, next_exec = self._next_executable(steps, index + 1)
        paths = self._local_access_paths(method, node, param_seeds or {})
        invoke = self._find_dispatch(method, steps, index + 1)
        if invoke is None:
            raise VerificationError(
                f"cannot synthesise: no dispatch from {steps[index].qualified} "
                f"to {steps[index + 1].qualified}"
            )

        if next_exec is None or next_index == len(steps) - 1:
            self._plant_sink_arguments(node, invoke, steps[-1], paths)
            return

        # bind the receiver of the next executable gadget
        child_class = steps[next_index].class_name
        receiver_loc = None
        if isinstance(invoke.base, ir.Local):
            receiver_loc = paths.get(invoke.base.name)
        same_object = False
        if receiver_loc is not None and receiver_loc[0] is node and not receiver_loc[1]:
            # dispatch on `this` (an inherited method): same gadget object
            child = node
            same_object = True
        elif self.hierarchy.is_subtype_of(node.class_name, child_class) and (
            invoke.kind == ir.InvokeKind.STATIC
            and steps[next_index].class_name == node.class_name
        ):
            child = node
            same_object = True
        else:
            child = PayloadNode(child_class)
            if invoke.kind == ir.InvokeKind.STATIC:
                # static hop: the gadget travels through an argument
                arg_loc = next(
                    (
                        paths[a.name]
                        for a in invoke.args
                        if isinstance(a, ir.Local) and a.name in paths
                    ),
                    None,
                )
                if arg_loc is not None and arg_loc[1]:
                    self._assign_path(arg_loc[0], arg_loc[1], child)
                else:
                    node.fields.setdefault(f"<{invoke.method_name}-arg>", child)
            elif receiver_loc is not None and receiver_loc[1]:
                self._assign_path(receiver_loc[0], receiver_loc[1], child)
            else:
                child.note = "receiver produced by a call"
                node.fields.setdefault(f"<{invoke.method_name}-receiver>", child)

        # thread argument provenance into the callee frame
        seeds: Dict[int, Tuple[PayloadNode, List[str]]] = {}
        target_method = self._executing_method(steps[next_index])
        offset = 0
        if invoke.kind == ir.InvokeKind.STATIC and target_method is not None and not target_method.is_static:
            offset = 0  # defensive; corpus static hops target static methods
        for i, arg in enumerate(invoke.args, start=1):
            if isinstance(arg, ir.Local) and arg.name in paths:
                seeds[i + offset] = paths[arg.name]
        if same_object and isinstance(invoke.base, ir.Local):
            loc = paths.get(invoke.base.name)
            if loc is not None:
                seeds[0] = loc
        self._populate(child, steps, next_index, seeds)

    def _executing_method(self, step: ChainStep) -> Optional[JavaMethod]:
        cls = self.hierarchy.get(step.class_name)
        if cls is None:
            return None
        method = cls.find_method(step.method_name, step.arity)
        if method is not None and method.has_body:
            return method
        return None

    def _next_executable(
        self, steps: List[ChainStep], start: int
    ) -> Tuple[int, Optional[JavaMethod]]:
        i = start
        while (
            i + 1 < len(steps)
            and steps[i + 1].method_name == steps[i].method_name
            and steps[i + 1].arity == steps[i].arity
            and self.hierarchy.is_subtype_of(
                steps[i + 1].class_name, steps[i].class_name
            )
        ):
            i += 1
        for j in range(i, len(steps)):
            method = self._executing_method(steps[j])
            if method is not None:
                return j, method
        return len(steps) - 1, None

    # -- intra-method access-path recovery ----------------------------------------

    def _find_dispatch(
        self, method: JavaMethod, steps: List[ChainStep], target_index: int
    ) -> Optional[ir.InvokeExpr]:
        """Locate the invocation that advances the chain."""
        target = steps[target_index]
        for stmt in method.body:
            invoke = stmt.invoke_expr()
            if invoke is None:
                continue
            if invoke.kind == ir.InvokeKind.DYNAMIC:
                return invoke  # proxies dispatch anywhere
            if (
                invoke.method_name == target.method_name
                and invoke.arity == target.arity
                and (
                    invoke.class_name == target.class_name
                    or self.hierarchy.is_subtype_of(
                        target.class_name, invoke.class_name
                    )
                    or self.hierarchy.is_subtype_of(
                        invoke.class_name, target.class_name
                    )
                )
            ):
                return invoke
        return None

    def _local_access_paths(
        self,
        method: JavaMethod,
        this_node: PayloadNode,
        param_seeds: Dict[int, Tuple[PayloadNode, List[str]]],
    ) -> Dict[str, Tuple[PayloadNode, List[str]]]:
        """Map each local to an (owner gadget node, field path) pair
        where statically recoverable (straight-line field/array loads)."""
        paths: Dict[str, Tuple[PayloadNode, List[str]]] = {}
        for stmt in method.body:
            if isinstance(stmt, ir.IdentityStmt):
                if isinstance(stmt.ref, ir.ThisRef):
                    paths[stmt.local.name] = (this_node, [])
                else:
                    seed = param_seeds.get(stmt.ref.index)
                    if seed is not None:
                        paths[stmt.local.name] = (seed[0], list(seed[1]))
            elif isinstance(stmt, ir.AssignStmt) and isinstance(stmt.target, ir.Local):
                rhs = stmt.rhs
                if isinstance(rhs, ir.InstanceFieldRef) and rhs.base.name in paths:
                    owner, base = paths[rhs.base.name]
                    paths[stmt.target.name] = (owner, base + [rhs.field_name])
                elif isinstance(rhs, ir.ArrayRef) and rhs.base.name in paths:
                    owner, base = paths[rhs.base.name]
                    paths[stmt.target.name] = (owner, base + ["[]"])
                elif isinstance(rhs, ir.Local) and rhs.name in paths:
                    owner, base = paths[rhs.name]
                    paths[stmt.target.name] = (owner, list(base))
                elif isinstance(rhs, ir.CastExpr):
                    op = rhs.op
                    if isinstance(op, ir.Local) and op.name in paths:
                        owner, base = paths[op.name]
                        paths[stmt.target.name] = (owner, list(base))
                elif (
                    isinstance(rhs, ir.InvokeExpr)
                    and isinstance(rhs.base, ir.Local)
                    and rhs.base.name in paths
                    and paths[rhs.base.name][1]
                ):
                    # a call result derives from its receiver object;
                    # attribute it to the receiver's access path so sink
                    # arguments like `this.val2.toString()` resolve
                    owner, base = paths[rhs.base.name]
                    paths[stmt.target.name] = (owner, list(base))
        return paths

    def _assign_path(
        self, node: PayloadNode, path: List[str], value: "PayloadNode | str"
    ) -> None:
        """Nest ``value`` under ``node`` along a field/array path."""
        current = node
        for i, segment in enumerate(path[:-1]):
            nxt = current.fields.get(segment)
            if not isinstance(nxt, PayloadNode):
                is_array = i + 1 < len(path) and path[i + 1] == "[]"
                nxt = PayloadNode("java.lang.Object[]" if is_array else "<holder>")
                current.fields[segment] = nxt
            current = nxt
        last = path[-1] if path else "<receiver>"
        current.fields[last] = value

    # -- sink arguments ---------------------------------------------------------------

    def _plant_sink_arguments(
        self,
        node: PayloadNode,
        call: ir.InvokeExpr,
        sink_step: ChainStep,
        paths: Dict[str, Tuple[PayloadNode, List[str]]],
    ) -> None:
        """Mark the fields feeding the sink call's Trigger_Condition
        positions as attacker values."""
        sink = self.sinks.lookup(sink_step.class_name, sink_step.method_name)
        tc = sink.trigger_condition if sink is not None else (0,)
        for position in tc:
            value = call.base if position == 0 else (
                call.args[position - 1] if position - 1 < len(call.args) else None
            )
            if isinstance(value, ir.Local) and value.name in paths and paths[value.name][1]:
                owner, fpath = paths[value.name]
                self._assign_path(owner, fpath, ATTACKER_VALUE)
            elif isinstance(value, ir.Local):
                node.fields.setdefault(f"<arg-{position}>", ATTACKER_VALUE)
        node.note = (node.note + "; " if node.note else "") + (
            f"calls {sink_step.qualified}()"
        )

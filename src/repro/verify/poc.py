"""Chain-guided PoC verification.

:class:`ChainVerifier` mechanises the paper's manual PoC step: it
simulates the deserialization of an attacker-crafted object graph and
checks that a candidate gadget chain actually executes from its source
to its sink with attacker data in every Trigger_Condition position.

The verifier walks the chain hop by hop.  Inside the current method's
body it explores all *feasible* paths — branch guards over concrete,
non-attacker state are evaluated for real (this is what kills the fake
chains behind ``if``/``switch`` guards, §IV-E), while guards over
attacker data explore both arms (the attacker picks the branch by
crafting fields).  A hop to the next chain step is taken when an
invocation's declared target matches the step and the receiver can be
*bound*: either the receiver is attacker-derived (the attacker
serialises an instance of the step's class there — requiring that class
to be serializable) or it is a concrete object whose class actually
dispatches to the step.  Reflective/proxy call sites (``DYNAMIC``)
bind to any step when the receiver is attacker-derived — dynamic-proxy
chains *verify* even though static analysers cannot find them (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.chains import ChainStep, GadgetChain
from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.errors import VerificationError
from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod
from repro.verify.values import AInt, ANull, AObject, AString, ATop, AValue

__all__ = ["ChainVerifier", "VerificationReport"]


@dataclass
class VerificationReport:
    """Outcome of verifying one chain."""

    chain: GadgetChain
    effective: bool
    reason: str
    steps_used: int = 0

    def __repr__(self) -> str:
        verdict = "EFFECTIVE" if self.effective else "fake"
        return f"<VerificationReport {verdict}: {self.reason}>"


class _Budget:
    __slots__ = ("remaining",)

    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self) -> bool:
        self.remaining -= 1
        return self.remaining > 0


class ChainVerifier:
    """Verifies gadget chains against the class corpus they came from."""

    def __init__(
        self,
        classes: Sequence[JavaClass],
        sinks: Optional[SinkCatalog] = None,
        sources: Optional[SourceCatalog] = None,
        max_steps: int = 50_000,
        max_loop_visits: int = 2,
    ):
        self.hierarchy = ClassHierarchy(classes)
        self.sinks = sinks if sinks is not None else SinkCatalog()
        self.sources = sources if sources is not None else SourceCatalog.extended()
        self.max_steps = max_steps
        self.max_loop_visits = max_loop_visits

    # -- public ------------------------------------------------------------

    def verify(self, chain: GadgetChain) -> VerificationReport:
        budget = _Budget(self.max_steps)
        source = chain.source
        method = self._resolve_step(source)
        if method is None or not method.has_body:
            return VerificationReport(chain, False, "source method has no body")
        if not self.sources.is_source(method, self.hierarchy):
            return VerificationReport(
                chain, False, "source is not a deserialization entry point"
            )
        statics: Dict[str, AValue] = {}
        this_value = AObject(source.class_name, attacker=True)
        args: List[AValue] = [ATop(tainted=True) for _ in range(method.arity)]
        ok = self._run_hop(method, this_value, args, list(chain.steps), budget, statics)
        used = self.max_steps - budget.remaining
        if ok:
            return VerificationReport(chain, True, "sink reached with attacker data", used)
        if budget.remaining <= 0:
            return VerificationReport(chain, False, "verification budget exhausted", used)
        return VerificationReport(
            chain, False, "no feasible execution reaches the sink", used
        )

    def verify_all(self, chains: Sequence[GadgetChain]) -> List[VerificationReport]:
        return [self.verify(c) for c in chains]

    # -- step resolution ------------------------------------------------------

    def _resolve_step(self, step: ChainStep) -> Optional[JavaMethod]:
        cls = self.hierarchy.get(step.class_name)
        if cls is None:
            return None
        return cls.find_method(step.method_name, step.arity)

    def _first_executable(
        self, steps: List[ChainStep], start: int
    ) -> Tuple[Optional[int], Optional[JavaMethod]]:
        """The step that actually *executes* for the hop at ``start``.

        Consecutive steps with the same name/arity form an alias-bridge
        run (declaration -> override, e.g. ``Object.hashCode ->
        URL.hashCode``): virtual dispatch selects the *last* method of
        the run, even when an earlier declaration has a trivial body.
        After the run, body-less steps (phantom/interface nodes) are
        skipped forward.
        """
        i = start
        while (
            i + 1 < len(steps)
            and steps[i + 1].method_name == steps[i].method_name
            and steps[i + 1].arity == steps[i].arity
            and self.hierarchy.is_subtype_of(
                steps[i + 1].class_name, steps[i].class_name
            )
        ):
            i += 1
        for j in range(i, len(steps)):
            method = self._resolve_step(steps[j])
            if method is not None and method.has_body:
                return j, method
        return None, None

    # -- hop execution ------------------------------------------------------------

    def _run_hop(
        self,
        method: JavaMethod,
        this_value: Optional[AValue],
        args: List[AValue],
        remaining: List[ChainStep],
        budget: _Budget,
        statics: Dict[str, AValue],
    ) -> bool:
        """Execute ``method`` (the step remaining[0]) looking for a
        feasible invocation that advances the chain."""
        if len(remaining) < 2:
            raise VerificationError("hop called with a completed chain")

        # Which invocation advances the chain?  The immediate next step;
        # body-less steps (alias/interface/phantom nodes) are looked
        # through to the next executable step, or to the sink.
        next_step = remaining[1]
        exec_index, exec_method = self._first_executable(remaining, 1)
        sink_is_next = exec_index is None or exec_index == len(remaining) - 1
        # the sink itself may be a defined method; treat the final step
        # as the sink regardless
        sink_step = remaining[-1]

        # DFS over (stmt index, environment)
        env: Dict[str, AValue] = {}
        frames: List[Tuple[int, Dict[str, AValue], Dict[int, int]]] = [(0, env, {})]
        body = method.body
        labels = {s.label: i for i, s in enumerate(body) if s.label}

        while frames:
            if not budget.spend():
                return False
            index, env, visits = frames.pop()
            if index >= len(body):
                continue
            count = visits.get(index, 0)
            if count >= self.max_loop_visits:
                continue
            visits = dict(visits)
            visits[index] = count + 1
            stmt = body[index]

            if isinstance(stmt, ir.IdentityStmt):
                env = dict(env)
                if isinstance(stmt.ref, ir.ThisRef):
                    env[stmt.local.name] = this_value or ATop()
                else:
                    pi = stmt.ref.index
                    env[stmt.local.name] = (
                        args[pi - 1] if pi - 1 < len(args) else ATop()
                    )
                frames.append((index + 1, env, visits))
                continue

            invoke = stmt.invoke_expr()
            if invoke is not None:
                receiver = (
                    self._eval(invoke.base, env, statics)
                    if invoke.base is not None
                    else None
                )
                arg_values = [self._eval(a, env, statics) for a in invoke.args]
                # (a) does this invocation advance the chain?
                if self._matches_step(invoke, next_step, receiver):
                    if sink_is_next or exec_method is None:
                        if self._sink_satisfied(invoke, sink_step, receiver, arg_values):
                            return True
                    else:
                        bound = self._bind_receiver(
                            invoke, receiver, remaining[exec_index], exec_method
                        )
                        if bound is not False:
                            if self._run_hop(
                                exec_method,
                                bound,
                                arg_values,
                                remaining[exec_index:],
                                budget,
                                statics,
                            ):
                                return True
                # (b) otherwise summarise the call and continue this path
                env = dict(env)
                self._summarise_call(stmt, invoke, receiver, arg_values, env)
                frames.append((index + 1, env, visits))
                continue

            if isinstance(stmt, ir.AssignStmt):
                env = dict(env)
                self._assign(stmt, env, statics)
                frames.append((index + 1, env, visits))
                continue

            if isinstance(stmt, ir.IfStmt):
                cond = self._eval(stmt.cond, env, statics)
                target = labels.get(stmt.target)
                taken = cond.concrete_int
                if taken is None or cond.tainted:
                    # unknown/attacker guard: both arms feasible
                    if target is not None:
                        frames.append((target, env, visits))
                    frames.append((index + 1, env, visits))
                elif taken != 0:
                    if target is not None:
                        frames.append((target, env, visits))
                else:
                    frames.append((index + 1, env, visits))
                continue

            if isinstance(stmt, ir.GotoStmt):
                target = labels.get(stmt.target)
                if target is not None:
                    frames.append((target, env, visits))
                continue

            if isinstance(stmt, ir.SwitchStmt):
                key = self._eval(stmt.key, env, statics)
                concrete = key.concrete_int
                if concrete is not None and not key.tainted:
                    chosen = stmt.default
                    for value, label in stmt.cases:
                        if value == concrete:
                            chosen = label
                            break
                    target = labels.get(chosen)
                    if target is not None:
                        frames.append((target, env, visits))
                else:
                    for _, label in stmt.cases:
                        target = labels.get(label)
                        if target is not None:
                            frames.append((target, env, visits))
                    target = labels.get(stmt.default)
                    if target is not None:
                        frames.append((target, env, visits))
                continue

            if isinstance(stmt, (ir.ReturnStmt, ir.ThrowStmt)):
                continue  # path ends without reaching the next hop

            # NopStmt and anything else: fall through
            frames.append((index + 1, env, visits))

        return False

    # -- matching ------------------------------------------------------------------

    def _matches_step(
        self, invoke: ir.InvokeExpr, step: ChainStep, receiver: Optional[AValue]
    ) -> bool:
        if invoke.kind == ir.InvokeKind.DYNAMIC:
            # dynamic proxy / reflection: the attacker picks the target
            return receiver is not None and receiver.tainted
        if invoke.method_name != step.method_name or invoke.arity != step.arity:
            return False
        if invoke.class_name == step.class_name:
            return True
        # dispatch-aware: some tools (GadgetInspector) record the resolved
        # override rather than the declared target; accept either end of
        # the alias relation
        return self.hierarchy.is_subtype_of(
            step.class_name, invoke.class_name
        ) or self.hierarchy.is_subtype_of(invoke.class_name, step.class_name)

    def _bind_receiver(
        self,
        invoke: ir.InvokeExpr,
        receiver: Optional[AValue],
        exec_step: ChainStep,
        exec_method: JavaMethod,
    ):
        """Can the receiver dispatch to ``exec_method``?

        Returns the bound receiver value (may be None for static calls)
        or False when binding is impossible.
        """
        if invoke.kind == ir.InvokeKind.STATIC:
            # static target must be the executable step itself
            if (
                invoke.class_name == exec_step.class_name
                and invoke.method_name == exec_step.method_name
            ):
                return None
            return False
        if receiver is None:
            return False
        if isinstance(receiver, AObject):
            # the receiver's class is known: if dispatch on it already
            # selects the executable method (including inherited
            # superclass methods), no new object is needed
            resolved = self.hierarchy.resolve_method(
                receiver.cls, invoke.method_name, invoke.arity
            )
            if resolved is exec_method:
                return receiver
            if not receiver.attacker:
                return False  # concrete allocation: class is fixed
        if receiver.tainted:
            # attacker-chosen object: must be a serializable instance of
            # the executable step's class (when the profile demands it)
            if self.sources.require_serializable and not self.hierarchy.is_serializable(
                exec_step.class_name
            ):
                return False
            return AObject(exec_step.class_name, attacker=True)
        return False

    def _sink_satisfied(
        self,
        invoke: ir.InvokeExpr,
        sink_step: ChainStep,
        receiver: Optional[AValue],
        args: List[AValue],
    ) -> bool:
        if invoke.kind != ir.InvokeKind.DYNAMIC:
            if (
                invoke.class_name != sink_step.class_name
                or invoke.method_name != sink_step.method_name
            ):
                return False
        sink = self.sinks.lookup(sink_step.class_name, sink_step.method_name)
        tc = sink.trigger_condition if sink is not None else (0,)
        for position in tc:
            if position == 0:
                if receiver is None or not receiver.tainted:
                    return False
            else:
                if position - 1 >= len(args) or not args[position - 1].tainted:
                    return False
        return True

    def _read_field(self, base: AObject, field_name: str) -> AValue:
        """Field read honouring ``transient``: the deserializer does not
        restore transient fields from attacker bytes — the runtime
        repopulates them with trusted instances of the declared type
        (the ``URL.handler`` situation in URLDNS)."""
        existing = base.fields.get(field_name)
        if existing is not None:
            return existing
        declaration = None
        cls = self.hierarchy.get(base.cls)
        if cls is not None:
            declaration = cls.field(field_name)
            if declaration is None:
                for super_name in self.hierarchy.supertypes(base.cls):
                    super_cls = self.hierarchy.get(super_name)
                    if super_cls is not None:
                        declaration = super_cls.field(field_name)
                        if declaration is not None:
                            break
        if (
            base.attacker
            and declaration is not None
            and declaration.is_transient
            and declaration.type.is_reference
        ):
            trusted = AObject(declaration.type.name, attacker=False)
            base.fields[field_name] = trusted
            return trusted
        return base.get_field(field_name)

    # -- expression evaluation -------------------------------------------------------

    def _eval(
        self, value: ir.Value, env: Dict[str, AValue], statics: Dict[str, AValue]
    ) -> AValue:
        if isinstance(value, ir.Local):
            return env.get(value.name, ATop())
        if isinstance(value, ir.IntConst):
            return AInt(value.value)
        if isinstance(value, ir.StringConst):
            return AString(value.value)
        if isinstance(value, ir.NullConst):
            return ANull()
        if isinstance(value, ir.ClassConst):
            return ATop()
        if isinstance(value, ir.InstanceFieldRef):
            base = env.get(value.base.name, ATop())
            if isinstance(base, AObject):
                return self._read_field(base, value.field_name)
            if base.tainted:
                return ATop(tainted=True)
            return ATop()
        if isinstance(value, ir.StaticFieldRef):
            # unset static state is JVM-default (0 / null), NOT attacker data
            return statics.get(
                f"{value.class_name}.{value.field_name}", AInt(0)
            )
        if isinstance(value, ir.ArrayRef):
            base = env.get(value.base.name, ATop())
            if isinstance(base, AObject):
                return base.get_field("[]")
            return ATop(tainted=base.tainted)
        if isinstance(value, ir.CastExpr):
            return self._eval(value.op, env, statics)
        if isinstance(value, ir.InstanceOfExpr):
            return AInt(None, tainted=self._eval(value.op, env, statics).tainted)
        if isinstance(value, ir.BinOpExpr):
            return self._eval_binop(value, env, statics)
        if isinstance(value, ir.NewExpr):
            return AObject(value.class_name, attacker=False)
        if isinstance(value, ir.NewArrayExpr):
            return AObject("[]", attacker=False)
        if isinstance(value, ir.InvokeExpr):  # pragma: no cover - handled upstream
            return ATop()
        raise VerificationError(f"cannot evaluate {value!r}")

    def _eval_binop(
        self, expr: ir.BinOpExpr, env: Dict[str, AValue], statics: Dict[str, AValue]
    ) -> AValue:
        left = self._eval(expr.left, env, statics)
        right = self._eval(expr.right, env, statics)
        tainted = left.tainted or right.tainted
        a, b = left.concrete_int, right.concrete_int
        if a is None or b is None or tainted:
            return AInt(None, tainted=tainted)
        op = expr.op
        try:
            if op == "+":
                return AInt(a + b)
            if op == "-":
                return AInt(a - b)
            if op == "*":
                return AInt(a * b)
            if op == "/":
                return AInt(a // b if b else 0)
            if op == "%":
                return AInt(a % b if b else 0)
            if op == "==":
                return AInt(int(a == b))
            if op == "!=":
                return AInt(int(a != b))
            if op == "<":
                return AInt(int(a < b))
            if op == "<=":
                return AInt(int(a <= b))
            if op == ">":
                return AInt(int(a > b))
            if op == ">=":
                return AInt(int(a >= b))
            if op == "&":
                return AInt(a & b)
            if op == "|":
                return AInt(a | b)
            if op == "^":
                return AInt(a ^ b)
        except (OverflowError, ValueError):  # pragma: no cover - defensive
            return AInt(None, tainted=tainted)
        return AInt(None, tainted=tainted)

    # -- state updates ------------------------------------------------------------------

    def _assign(
        self, stmt: ir.AssignStmt, env: Dict[str, AValue], statics: Dict[str, AValue]
    ) -> None:
        value = self._eval(stmt.rhs, env, statics)
        target = stmt.target
        if isinstance(target, ir.Local):
            env[target.name] = value
        elif isinstance(target, ir.InstanceFieldRef):
            base = env.get(target.base.name, ATop())
            if isinstance(base, AObject):
                base.set_field(target.field_name, value)
        elif isinstance(target, ir.StaticFieldRef):
            statics[f"{target.class_name}.{target.field_name}"] = value
        elif isinstance(target, ir.ArrayRef):
            base = env.get(target.base.name, ATop())
            if isinstance(base, AObject):
                base.set_field("[]", value)

    def _summarise_call(
        self,
        stmt: ir.Statement,
        invoke: ir.InvokeExpr,
        receiver: Optional[AValue],
        args: List[AValue],
        env: Dict[str, AValue],
    ) -> None:
        """Off-chain call: the result (and mutated receiver) derives
        from the inputs' taint; no body is executed."""
        tainted = bool(receiver is not None and receiver.tainted) or any(
            a.tainted for a in args
        )
        if (
            isinstance(receiver, AObject)
            and any(a.tainted for a in args)
            and invoke.method_name == "<init>"
        ):
            # constructor stuffing attacker data into a fresh object
            receiver.tainted = True
            receiver.attacker = True
        if isinstance(stmt, ir.AssignStmt) and isinstance(stmt.target, ir.Local):
            env[stmt.target.name] = ATop(tainted=tainted)

"""Gadget-chain verification — the PoC oracle.

The paper validates every reported chain by hand: "we manually
instantiated the classes in the three tools' gadget chains and wrote a
Proof of Concept to verify their effectiveness" (§IV-C).  This package
mechanises that step for the jasm corpus: a chain-guided abstract
interpreter simulates deserialization (the attacker controls the object
graph: every field of a serialized object may hold an attacker-chosen
serializable object) and executes the candidate chain, honouring the
concrete semantics of branch guards over non-attacker state.  A chain
is *effective* when the sink is reached with attacker data in every
Trigger_Condition position.
"""

from repro.verify.payload import PayloadNode, PayloadSpec, PayloadSynthesizer
from repro.verify.poc import ChainVerifier, VerificationReport

__all__ = [
    "ChainVerifier",
    "VerificationReport",
    "PayloadSynthesizer",
    "PayloadSpec",
    "PayloadNode",
]

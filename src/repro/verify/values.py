"""Abstract value domain for the PoC oracle.

The verifier needs just enough concreteness to evaluate the branch
guards that break fake chains (§IV-E: Tabby's false positives come from
"certain logical judgments in the code") and just enough taint to check
Trigger_Conditions at the sink:

* :class:`AInt` — integers with an optional concrete value;
* :class:`AString` — strings with an optional concrete value;
* :class:`ANull` — the null reference;
* :class:`AObject` — an object with a class name and field map;
  ``attacker=True`` marks objects the attacker materialises during
  deserialization (their unset fields yield fresh attacker values —
  the attacker chooses what was serialized there);
* :class:`ATop` — unknown values (summarised call results).

Every value carries ``tainted``: whether it derives from attacker data.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["AValue", "AInt", "AString", "ANull", "AObject", "ATop"]


class AValue:
    """Base abstract value."""

    __slots__ = ("tainted",)

    def __init__(self, tainted: bool = False):
        self.tainted = tainted

    @property
    def concrete_int(self) -> Optional[int]:
        return None

    @property
    def class_name(self) -> Optional[str]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        taint = "T" if self.tainted else "-"
        return f"<{type(self).__name__} {taint}>"


class AInt(AValue):
    __slots__ = ("value",)

    def __init__(self, value: Optional[int] = None, tainted: bool = False):
        super().__init__(tainted)
        self.value = value

    @property
    def concrete_int(self) -> Optional[int]:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        taint = "T" if self.tainted else "-"
        return f"<AInt {self.value} {taint}>"


class AString(AValue):
    __slots__ = ("value",)

    def __init__(self, value: Optional[str] = None, tainted: bool = False):
        super().__init__(tainted)
        self.value = value


class ANull(AValue):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(False)

    @property
    def concrete_int(self) -> Optional[int]:
        return 0  # null compares equal to the zero constant in guards


class AObject(AValue):
    """An object instance.

    ``attacker`` objects are materialised by the deserializer from
    attacker bytes: reading an *unset* non-transient field produces a
    fresh attacker value (the attacker serialised whatever they liked
    there).  Concrete (``new``-allocated) objects read unset fields as
    null, like a real JVM.
    """

    __slots__ = ("cls", "fields", "attacker")

    def __init__(
        self,
        cls: str,
        attacker: bool = False,
        fields: Optional[Dict[str, AValue]] = None,
    ):
        super().__init__(tainted=attacker)
        self.cls = cls
        self.attacker = attacker
        self.fields: Dict[str, AValue] = dict(fields or {})

    @property
    def class_name(self) -> Optional[str]:
        return self.cls

    def get_field(self, name: str) -> AValue:
        value = self.fields.get(name)
        if value is not None:
            return value
        if self.attacker:
            fresh = ATop(tainted=True)
            self.fields[name] = fresh
            return fresh
        return ANull()

    def set_field(self, name: str, value: AValue) -> None:
        self.fields[name] = value

    def __repr__(self) -> str:  # pragma: no cover
        kind = "atk" if self.attacker else "new"
        return f"<AObject {self.cls} {kind}>"


class ATop(AValue):
    """An unknown value (e.g. the result of a summarised call)."""

    __slots__ = ()

"""Analysis-as-a-service: the ``tabby serve`` HTTP job-queue API.

The pipeline the CLI runs once per invocation — parse, CPG build,
chain search, lint — becomes a long-running service:

* :mod:`repro.serve.store` — content-hash submission keys (layered on
  the :mod:`repro.core.summary_cache` hashing discipline) and the
  LRU result store that turns identical submissions into cache hits;
* :mod:`repro.serve.jobs` — the async job queue: a bounded worker
  pool, in-flight deduplication (a second identical submission
  attaches to the running job), graceful drain on shutdown;
* :mod:`repro.serve.ratelimit` — per-client token-bucket rate
  limiting for the submission endpoint;
* :mod:`repro.serve.app` — the stdlib ``ThreadingHTTPServer`` REST
  layer: ``POST /jobs``, ``GET /jobs/<id>`` (state + live per-phase
  ``CPGStatistics``/``SearchStatistics`` counters), result endpoints
  ``chains``/``lint``/``query``, and ``DELETE /jobs/<id>``.

Start one from the CLI with ``tabby serve --host H --port P
--workers N --cache-dir DIR`` or in-process via
:func:`repro.serve.app.create_server`.
"""

from repro.serve.jobs import (
    Job,
    JobManager,
    JobState,
    Submission,
    normalize_submission,
    resolve_classes,
)
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.store import JobResult, ResultStore, bundle_key
from repro.serve.app import TabbyServer, create_server

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "JobResult",
    "RateLimiter",
    "ResultStore",
    "Submission",
    "TabbyServer",
    "TokenBucket",
    "bundle_key",
    "create_server",
    "normalize_submission",
    "resolve_classes",
]

"""Content-hash keys and the in-memory result store for ``tabby serve``.

The service's cache discipline is the one :mod:`repro.core.summary_cache`
established for per-class summaries, lifted to whole submissions: a
job's result is a pure function of

1. the submitted code — the raw jasm bundle text, or the resolved
   corpus component names (component generators are deterministic),
2. the analysis options in effect (source catalog, depth, filters), and
3. the sink/source catalog revisions, folded in via
   :func:`repro.core.summary_cache.catalog_token`,

so the store keys on a SHA-256 over exactly those inputs plus a format
version.  Two byte-identical submissions — from the same client or
different ones — share one computation and one stored result; a
semantically identical but textually different bundle merely misses
the cache and recomputes, which is always safe.

Hashing the *raw* submission (rather than a parsed canonical form)
keeps the warm path allocation-free: a cache-hit ``POST /jobs`` costs
one digest over the request body, no jasm parsing.  Parsing happens
once, in the worker, for submissions that actually compute.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.core.summary_cache import catalog_token

__all__ = [
    "SERVE_FORMAT_VERSION",
    "JobResult",
    "ResultStore",
    "bundle_key",
    "canonical_options",
]

#: bump when the submission schema or the pipeline semantics change —
#: same contract as ``summary_cache.CACHE_FORMAT_VERSION``
SERVE_FORMAT_VERSION = 1

#: recognised analysis options and their defaults; ``canonical_options``
#: fills these in so hash keys never depend on which defaults a client
#: spelled out explicitly
OPTION_DEFAULTS: Dict[str, Any] = {
    "sources": "extended",
    "max_depth": 12,
    "source_filter": None,
    "refine_guards": False,
    "refine": "",
}


def canonical_options(options: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Validate and default-fill a submission's options.

    Raises ``ValueError`` on unknown keys or ill-typed values; the HTTP
    layer maps that to a 400.
    """
    merged = dict(OPTION_DEFAULTS)
    for key, value in (options or {}).items():
        if key not in OPTION_DEFAULTS:
            raise ValueError(f"unknown option: {key}")
        merged[key] = value
    if merged["sources"] not in ("native", "extended"):
        raise ValueError("options.sources must be 'native' or 'extended'")
    if not isinstance(merged["max_depth"], int) or isinstance(merged["max_depth"], bool) \
            or not 1 <= merged["max_depth"] <= 64:
        raise ValueError("options.max_depth must be an integer in [1, 64]")
    if merged["source_filter"] is not None and not isinstance(
        merged["source_filter"], str
    ):
        raise ValueError("options.source_filter must be a string or null")
    if not isinstance(merged["refine_guards"], bool):
        raise ValueError("options.refine_guards must be a boolean")
    if not isinstance(merged["refine"], str):
        raise ValueError(
            "options.refine must be a comma-separated string of modes"
        )
    from repro.analysis.chain_refiner import REFINE_MODES

    modes = tuple(m.strip() for m in merged["refine"].split(",") if m.strip())
    if any(m not in REFINE_MODES for m in modes):
        raise ValueError(
            f"options.refine modes must be drawn from {REFINE_MODES}"
        )
    # canonical spelling so "taint,rta", "rta, taint" and "rta,taint"
    # all share one cache key
    merged["refine"] = ",".join(m for m in REFINE_MODES if m in modes)
    return merged


def bundle_key(
    kind: str,
    payload: Sequence[str],
    options: Dict[str, Any],
    sinks: Optional[SinkCatalog] = None,
    sources: Optional[SourceCatalog] = None,
) -> str:
    """The content hash a submission is cached under.

    ``kind`` is ``"classes"`` (payload: jasm text chunks, order
    preserved — jar order is analysis-relevant) or ``"components"``
    (payload: corpus component names, sorted by the caller).
    """
    h = hashlib.sha256()
    h.update(
        f"serve-v{SERVE_FORMAT_VERSION}|{catalog_token(sinks, sources)}|".encode()
    )
    h.update(kind.encode())
    for chunk in payload:
        h.update(b"\x00")
        h.update(chunk.encode("utf-8"))
    h.update(b"\x01")
    h.update(json.dumps(options, sort_keys=True).encode("utf-8"))
    return h.hexdigest()


@dataclass
class JobResult:
    """Everything a completed job can serve, keyed by content hash.

    ``graph`` keeps the built CPG queryable (``GET .../query``) without
    re-running the pipeline; ``fingerprint`` is a digest of
    :func:`repro.graphdb.snapshot.graph_fingerprint`, the identity the
    equivalence tests compare cache hits against recomputation with.
    """

    key: str
    chain_records: List[Dict[str, Any]] = field(default_factory=list)
    lint_records: List[Dict[str, Any]] = field(default_factory=list)
    verdict_records: List[Dict[str, Any]] = field(default_factory=list)
    refine_stats: Dict[str, Any] = field(default_factory=dict)
    #: the versioned tabby-diff/v1 document, for ``diff`` jobs only
    diff_record: Dict[str, Any] = field(default_factory=dict)
    graph: Any = None
    fingerprint: str = ""
    cpg_row: Dict[str, Any] = field(default_factory=dict)
    search_row: Dict[str, Any] = field(default_factory=dict)
    class_count: int = 0
    compute_seconds: float = 0.0


class ResultStore:
    """A thread-safe LRU map ``content hash -> JobResult``.

    Eviction only ever forgets *cached* work — a completed job keeps a
    direct reference to its own result, so polling an existing job
    never loses data; eviction merely means the next identical
    submission recomputes (the hypothesis battery in
    ``tests/serve/test_store_properties.py`` pins both halves of that
    contract).
    """

    def __init__(self, capacity: int = 256, on_evict: Optional[Any] = None):
        if capacity < 1:
            raise ValueError("store capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, JobResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        #: ``on_evict(key, result)`` fires for every entry leaving the
        #: store (LRU pressure or explicit :meth:`evict`), *outside* the
        #: store lock — side caches keyed by result keys (the job
        #: manager's opened-snapshot graphs) piggyback their lifetime on
        #: the store's this way
        self.on_evict = on_evict

    def get(self, key: str) -> Optional[JobResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: JobResult) -> None:
        dropped: List[Tuple[str, JobResult]] = []
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            self.stored += 1
            while len(self._entries) > self.capacity:
                dropped.append(self._entries.popitem(last=False))
                self.evicted += 1
        if self.on_evict is not None:
            for old_key, old_result in dropped:
                self.on_evict(old_key, old_result)

    def evict(self, key: str) -> bool:
        with self._lock:
            result = self._entries.pop(key, None)
            if result is not None:
                self.evicted += 1
        if result is not None:
            if self.on_evict is not None:
                self.on_evict(key, result)
            return True
        return False

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "stored": self.stored,
                "evicted": self.evicted,
            }

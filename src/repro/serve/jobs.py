"""The async job queue behind ``tabby serve``.

A submission travels: ``normalize_submission`` (shape validation +
content hash, in the HTTP thread) -> :meth:`JobManager.submit` (dedup
decision under one lock) -> a bounded pool of worker threads running
the ordinary :class:`repro.core.api.Tabby` pipeline -> the
content-hash-keyed :class:`repro.serve.store.ResultStore`.

Deduplication is two-layered and atomic with respect to the manager
lock:

* **in-flight** — while a job for hash H is queued or running, every
  further submission of H *attaches* to it (same job id, zero extra
  compute);
* **warm** — once H's result is stored, a submission of H creates a
  job that is born ``done``, serving the stored result.

Between the two there is no window in which a second computation for H
can start: a worker commits ``store.put`` and retires the in-flight
entry under the same lock a submitter consults both in.  The
concurrency battery (``tests/serve/test_concurrency.py``) asserts the
exactly-one-computation-per-hash consequence directly.

Workers are *threads*, not processes: one job's pipeline is the same
single-process code path the CLI runs (``Tabby(workers=1)``), so N
service workers bound memory at N live CPGs while the summary cache
(``cache_dir``) is shared across all of them, processes included.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.api import Tabby
from repro.core.cpg import CLASS_LABEL, CPG, METHOD_LABEL, CPGStatistics
from repro.core.pathfinder import GadgetChainFinder, SearchStatistics
from repro.core.sinks import SinkCatalog
from repro.core.sources import SourceCatalog
from repro.errors import ReproError
from repro.graphdb.mvcc import VersionedGraph, version_of
from repro.graphdb.storage import load_graph, open_graph
from repro.jvm.hierarchy import ClassHierarchy
from repro.serve.store import JobResult, ResultStore, bundle_key, canonical_options

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "LiveGraph",
    "Submission",
    "normalize_submission",
    "resolve_classes",
    "fingerprint_digest",
]

_SENTINEL = object()


class JobState:
    """Terminal states are DONE/FAILED/CANCELLED; the rest progress."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset((DONE, FAILED, CANCELLED))


@dataclass(frozen=True)
class Submission:
    """A validated, content-addressed unit of work."""

    kind: str  # "classes" | "components" | "snapshot" | "diff" | "live"
    payload: Tuple[str, ...]
    options: Dict[str, Any]
    key: str
    #: ``live`` jobs only: the immutable MVCC snapshot pinned at
    #: submission time.  Not part of the content identity — the pinned
    #: *version number* already is, via ``payload``/``key``.
    pinned: Any = field(default=None, compare=False)


def _resolve_snapshot(name: Any, snapshot_dir: Optional[str]) -> str:
    """Validate a snapshot job's file reference and return its path.

    The name is a plain file name (or relative path) inside the
    server's ``--snapshot-dir``; absolute paths and any path that
    escapes the directory are rejected so clients can never address
    arbitrary files on the host.
    """
    if snapshot_dir is None:
        raise ValueError(
            "snapshot jobs are disabled (start the server with --snapshot-dir)"
        )
    if not isinstance(name, str) or not name.strip():
        raise ValueError("'snapshot' must be a non-empty file name")
    if os.path.isabs(name) or ".." in name.replace("\\", "/").split("/"):
        raise ValueError("'snapshot' must be a relative path inside the "
                         "snapshot directory")
    base = os.path.realpath(snapshot_dir)
    path = os.path.realpath(os.path.join(base, name))
    if path != base and not path.startswith(base + os.sep):
        raise ValueError("'snapshot' must be a relative path inside the "
                         "snapshot directory")
    if not os.path.isfile(path):
        raise ValueError(f"snapshot not found: {name}")
    return path


def normalize_submission(
    body: Any,
    sinks: Optional[SinkCatalog] = None,
    snapshot_dir: Optional[str] = None,
    live: Optional["LiveGraph"] = None,
) -> Submission:
    """Validate a ``POST /jobs`` body and compute its content hash.

    Raises ``ValueError`` with a client-presentable message on any
    shape problem (the HTTP layer answers 400).  Deliberately cheap:
    no jasm parsing happens here, so the warm path of an identical
    resubmission costs one SHA-256 over the raw bundle text (or, for
    ``snapshot`` jobs, over the file's stat identity — the file itself
    is only opened, zero-copy, inside the worker).
    """
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    unknown = set(body) - {
        "classes", "components", "snapshot", "diff", "live", "options",
    }
    if unknown:
        raise ValueError(f"unknown field(s): {', '.join(sorted(unknown))}")
    kinds_present = [
        k for k in ("classes", "components", "snapshot", "diff", "live")
        if k in body
    ]
    if len(kinds_present) != 1:
        raise ValueError(
            "provide exactly one of 'classes', 'components', 'snapshot', "
            "'diff' or 'live'"
        )
    options = body.get("options")
    if options is not None and not isinstance(options, dict):
        raise ValueError("'options' must be a JSON object")
    options = canonical_options(options)

    if kinds_present == ["live"]:
        if live is None:
            raise ValueError(
                "live jobs are disabled (start the server with --live)"
            )
        if body["live"] is not True:
            raise ValueError("'live' must be the JSON literal true")
        if options["refine"] or options["refine_guards"]:
            raise ValueError(
                "live jobs cannot refine: the shared CPG carries no class "
                "hierarchy (rebuild from classes/components instead)"
            )
        # pin the current committed version NOW (one atomic attribute
        # read — wait-free w.r.t. any in-flight writer); the version
        # number is the content identity, so a commit between two
        # submissions gives the second one a fresh key while the first
        # keeps serving its pinned version
        graph, version = live.pin()
        key = bundle_key("live", (live.path, str(version)), options)
        return Submission(
            kind="live", payload=(str(version),), options=options, key=key,
            pinned=graph,
        )

    if kinds_present == ["snapshot"]:
        path = _resolve_snapshot(body["snapshot"], snapshot_dir)
        if options["refine"] or options["refine_guards"]:
            raise ValueError(
                "snapshot jobs cannot refine: a persisted CPG carries no "
                "class hierarchy (rebuild from classes/components instead)"
            )
        # the key must change when the file does: stat identity stands
        # in for content (hashing multi-GB snapshots per submission
        # would defeat the zero-copy point)
        st = os.stat(path)
        token = f"{st.st_size}:{st.st_mtime_ns}"
        key = bundle_key("snapshot", (body["snapshot"], token), options)
        return Submission(
            kind="snapshot", payload=(body["snapshot"],), options=options,
            key=key,
        )

    if kinds_present == ["diff"]:
        spec = body["diff"]
        if not isinstance(spec, dict) or set(spec) != {"old", "new"}:
            raise ValueError(
                "'diff' must be an object with exactly 'old' and 'new' "
                "jasm bundles"
            )
        sides = {}
        for side in ("old", "new"):
            chunks = spec[side]
            if isinstance(chunks, str):
                chunks = [chunks]
            if (
                not isinstance(chunks, list)
                or not chunks
                or not all(isinstance(c, str) and c.strip() for c in chunks)
            ):
                raise ValueError(
                    f"'diff.{side}' must be a non-empty jasm string or "
                    "list of jasm strings"
                )
            sides[side] = tuple(chunks)
        sources = (
            SourceCatalog.native()
            if options["sources"] == "native"
            else SourceCatalog.extended()
        )
        # both versions' content feeds the key; the leading count keeps
        # ("ab","c") vs ("a","bc") splits from colliding
        payload = (str(len(sides["old"])),) + sides["old"] + sides["new"]
        key = bundle_key("diff", payload, options, sinks=sinks, sources=sources)
        return Submission(kind="diff", payload=payload, options=options, key=key)

    has_classes = kinds_present == ["classes"]
    if has_classes:
        chunks = body["classes"]
        if isinstance(chunks, str):
            chunks = [chunks]
        if (
            not isinstance(chunks, list)
            or not chunks
            or not all(isinstance(c, str) and c.strip() for c in chunks)
        ):
            raise ValueError("'classes' must be a non-empty jasm string "
                             "or list of jasm strings")
        kind, payload = "classes", tuple(chunks)
    else:
        names = body["components"]
        if (
            not isinstance(names, list)
            or not names
            or not all(isinstance(n, str) for n in names)
        ):
            raise ValueError("'components' must be a non-empty list of "
                             "component names")
        from repro.corpus import COMPONENT_NAMES

        bad = sorted(set(names) - set(COMPONENT_NAMES))
        if bad:
            raise ValueError(f"unknown component(s): {', '.join(bad)}")
        # order-independent: the resolved classpath is lang base + the
        # sorted component set either way
        kind, payload = "components", tuple(sorted(set(names)))

    sources = (
        SourceCatalog.native()
        if options["sources"] == "native"
        else SourceCatalog.extended()
    )
    key = bundle_key(kind, payload, options, sinks=sinks, sources=sources)
    return Submission(kind=kind, payload=payload, options=options, key=key)


def resolve_classes(submission: Submission) -> List[Any]:
    """Parse/build the submitted classes.  Runs in the worker (or the
    equivalence tests); jasm syntax errors propagate as ``ReproError``
    and fail the job rather than the HTTP request."""
    if submission.kind == "classes":
        from repro.jvm import jasm

        classes: List[Any] = []
        for chunk in submission.payload:
            classes.extend(jasm.loads(chunk))
        return classes
    from repro.corpus import build_component, build_lang_base

    classes = build_lang_base()
    for name in submission.payload:
        classes += build_component(name).classes
    return classes


def fingerprint_digest(graph: Any) -> str:
    """A stable digest of :func:`repro.graphdb.snapshot.graph_fingerprint`.

    The CPG build is deterministic, so recomputing a submission yields
    a byte-identical fingerprint — the identity the cache-vs-recompute
    equivalence tests compare.  Delegates to the graphdb implementation,
    which memoises the digest on frozen (committed MVCC) graphs — the
    ``/stats`` live block and repeat live jobs pay the O(graph) walk
    once per committed version.
    """
    from repro.graphdb.snapshot import fingerprint_digest as digest

    return digest(graph)


class LiveGraph:
    """The shared, MVCC-versioned CPG behind ``tabby serve --live``.

    One :class:`~repro.graphdb.graph.PropertyGraph` is decoded from the
    snapshot file at startup and published as version 0 of a
    :class:`~repro.graphdb.mvcc.VersionedGraph`.  Every ``live`` job
    pins an immutable committed version with one atomic read at
    submission time — N concurrent jobs traverse the same physical
    structure with no lock and no per-job reopen — while
    :meth:`refresh` (the snapshot file changed on disk, e.g. an
    incremental-analysis writer saved a new version) commits the new
    graph as the next MVCC version without disturbing any in-flight
    reader: their pinned versions stay frozen and fingerprint-stable.
    """

    def __init__(self, path: str):
        if not os.path.isfile(path):
            raise ValueError(f"live CPG not found: {path}")
        self.path = path
        self._refresh_lock = threading.Lock()
        graph, token = self._load()
        self._stat_token = token
        self.versioned = VersionedGraph(graph)
        self.refreshes = 0

    def _load(self) -> Tuple[Any, str]:
        st = os.stat(self.path)
        token = f"{st.st_size}:{st.st_mtime_ns}"
        graph = load_graph(self.path)
        if not hasattr(graph, "freeze"):  # a read-only mmap view
            graph = graph.materialize()
        return graph, token

    def pin(self) -> Tuple[Any, int]:
        """The current committed version plus its number (wait-free)."""
        graph = self.versioned.begin_snapshot()
        return graph, version_of(graph)

    def refresh(self, force: bool = False) -> Dict[str, Any]:
        """Commit the on-disk snapshot as the next version if it changed.

        Stat identity (size + mtime_ns, the same token snapshot-job
        cache keys use) decides "changed"; ``force=True`` reloads
        unconditionally.  Concurrent refreshes serialize here, readers
        never wait.
        """
        with self._refresh_lock:
            st = os.stat(self.path)
            token = f"{st.st_size}:{st.st_mtime_ns}"
            if not force and token == self._stat_token:
                return {
                    "refreshed": False,
                    "version": self.versioned.version,
                }
            graph, token = self._load()
            with self.versioned.write_txn() as txn:
                txn.replace(graph)
            self._stat_token = token
            self.refreshes += 1
            return {"refreshed": True, "version": self.versioned.version}

    def cpg_view(self, graph: Any) -> CPG:
        """A searchable CPG wrapper around one pinned version (no class
        hierarchy — same contract as a snapshot-loaded Tabby)."""
        statistics = CPGStatistics(
            class_node_count=graph.indexes.label_count(CLASS_LABEL),
            method_node_count=graph.indexes.label_count(METHOD_LABEL),
            relationship_edge_count=graph.relationship_count,
        )
        return CPG(graph, ClassHierarchy([]), statistics, {})

    def stats(self) -> Dict[str, Any]:
        graph, version = self.pin()
        return {
            "path": self.path,
            "version": version,
            "nodes": graph.node_count,
            "relationships": graph.relationship_count,
            # memoised on the frozen version: repeat /stats polls between
            # commits don't re-walk the graph
            "fingerprint": fingerprint_digest(graph),
            "refreshes": self.refreshes,
        }


def _cpg_row(stats: CPGStatistics) -> Dict[str, Any]:
    row = stats.as_row()
    row["phase_seconds"] = dict(stats.phase_seconds)
    row["analyzed_methods"] = stats.analyzed_method_count
    row["cached_methods"] = stats.cached_method_count
    row["cache_hits"] = stats.cache_hits
    row["cache_misses"] = stats.cache_misses
    return row


def _search_row(stats: SearchStatistics) -> Dict[str, Any]:
    row = asdict(stats)
    row["phase_seconds"] = dict(stats.phase_seconds)
    return row


class Job:
    """One submission's lifecycle record (shared by attached submits)."""

    def __init__(self, job_id: str, submission: Submission):
        self.id = job_id
        self.submission = submission
        self.key = submission.key
        self.state = JobState.QUEUED
        self.phase = "queued"
        self.cached = False
        self.attached = 0
        self.error: Optional[str] = None
        self.result: Optional[JobResult] = None
        self.progress: Dict[str, Any] = {}
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.event = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self.event.wait(timeout)

    def as_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` document (also the list-entry shape)."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "phase": self.phase,
            "cached": self.cached,
            "attached": self.attached,
            "kind": self.submission.kind,
            "options": dict(self.submission.options),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "progress": dict(self.progress),
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["chain_count"] = len(self.result.chain_records)
            doc["fingerprint"] = self.result.fingerprint
        return doc


class JobManager:
    """Bounded worker pool + dedup + result store, one lock for all
    lifecycle transitions."""

    def __init__(
        self,
        workers: int = 2,
        store: Optional[ResultStore] = None,
        cache_dir: Optional[str] = None,
        sinks: Optional[SinkCatalog] = None,
        max_queue: int = 0,
        inline: bool = False,
        snapshot_dir: Optional[str] = None,
        live: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if snapshot_dir is not None and not os.path.isdir(snapshot_dir):
            raise ValueError(f"snapshot_dir is not a directory: {snapshot_dir}")
        self.workers = workers
        self.store = store if store is not None else ResultStore()
        self.cache_dir = cache_dir
        self.sinks = sinks
        #: directory of persisted CPG snapshots servable via the
        #: ``snapshot`` job kind; None disables the kind entirely
        self.snapshot_dir = snapshot_dir
        #: the shared MVCC-versioned CPG behind ``live`` jobs; None
        #: disables the kind entirely
        self.live: Optional[LiveGraph] = LiveGraph(live) if live else None
        self.max_queue = max_queue
        self.inline = inline
        # opened-graph cache for snapshot jobs: one mmap/decoded graph
        # per (path, stat identity), shared by every concurrent and
        # repeat job over the same file version; lifetime rides the
        # result store's LRU via its eviction hook
        self._snap_lock = threading.Lock()
        self._snapshot_graphs: Dict[str, Any] = {}
        self._snapshot_refs: Dict[str, Set[str]] = {}
        self._snapshot_tokens: Dict[str, str] = {}
        self.snapshot_cache_hits = 0
        self.snapshot_cache_opens = 0
        self._prior_on_evict = self.store.on_evict
        self.store.on_evict = self._result_evicted
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._active: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._next_id = 0
        self._threads: List[threading.Thread] = []
        # counters (guarded by _lock)
        self.submitted = 0
        self.computed = 0
        self.attached_total = 0
        self.cache_hits = 0
        self.failed = 0
        self.cancelled = 0
        if not inline:
            for n in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"tabby-serve-worker-{n}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        body: Any = None,
        *,
        submission: Optional[Submission] = None,
    ) -> Tuple[Optional[Job], str]:
        """Admit one submission.

        Returns ``(job, status)`` with status one of ``"new"`` (will
        compute), ``"attached"`` (rides an in-flight identical job),
        ``"cached"`` (born done from the store), ``"overloaded"``
        (bounded queue full) or ``"closed"`` (shutting down); job is
        None for the last two.
        """
        sub = submission if submission is not None else normalize_submission(
            body, sinks=self.sinks, snapshot_dir=self.snapshot_dir,
            live=self.live,
        )
        run_now: Optional[Job] = None
        with self._lock:
            if self._closed:
                return None, "closed"
            self.submitted += 1
            active = self._active.get(sub.key)
            if active is not None:
                active.attached += 1
                self.attached_total += 1
                return active, "attached"
            stored = self.store.get(sub.key)
            if stored is not None:
                job = self._new_job(sub)
                job.state = JobState.DONE
                job.phase = "done"
                job.cached = True
                job.result = stored
                job.progress = {"cpg": stored.cpg_row, "search": stored.search_row}
                job.finished = job.created
                job.event.set()
                self.cache_hits += 1
                return job, "cached"
            if self.max_queue and self._queue.qsize() >= self.max_queue:
                return None, "overloaded"
            job = self._new_job(sub)
            self._active[sub.key] = job
            if self.inline:
                run_now = job
            else:
                self._queue.put(job)
        if run_now is not None:
            self._run_job(run_now)
            return run_now, "new"
        return job, "new"

    def _new_job(self, sub: Submission) -> Job:
        self._next_id += 1
        job = Job(f"j{self._next_id:05d}", sub)
        self._jobs[job.id] = job
        return job

    # -- lookup / deletion -------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def delete(self, job_id: str, purge: bool = False) -> str:
        """Remove a job record.

        ``"deleted"`` on success (queued jobs are cancelled first),
        ``"running"`` when refused (the computation is in flight — its
        attached waiters still poll it), ``"missing"`` otherwise.
        ``purge=True`` additionally evicts the job's stored result, so
        the next identical submission recomputes.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return "missing"
            if job.state == JobState.RUNNING:
                return "running"
            if job.state == JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.phase = "cancelled"
                job.finished = time.time()
                self._active.pop(job.key, None)
                self.cancelled += 1
                job.event.set()
            del self._jobs[job_id]
            if purge:
                self.store.evict(job.key)
            return "deleted"

    # -- the worker side ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            self._run_job(item)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            if job.state != JobState.QUEUED:  # cancelled while queued
                return
            job.state = JobState.RUNNING
            job.started = time.time()
            job.phase = "parse"
        try:
            result = self._compute(job)
        except (ReproError, ValueError) as exc:
            with self._lock:
                job.state = JobState.FAILED
                job.phase = "failed"
                job.error = str(exc)
                job.finished = time.time()
                self._active.pop(job.key, None)
                self.failed += 1
            job.event.set()
            return
        with self._lock:
            job.result = result
            job.state = JobState.DONE
            job.phase = "done"
            job.finished = time.time()
            # commit + retire atomically w.r.t. submit(): no window in
            # which an identical submission could start a second compute
            self.store.put(job.key, result)
            self._active.pop(job.key, None)
            self.computed += 1
        job.event.set()

    def _compute(self, job: Job) -> JobResult:
        """The ordinary pipeline, with phase markers the progress
        endpoint surfaces live."""
        from repro.lint import lint_classes

        started = time.perf_counter()
        options = job.submission.options
        if job.submission.kind == "snapshot":
            return self._compute_snapshot(job, options, started)
        if job.submission.kind == "live":
            return self._compute_live(job, options, started)
        if job.submission.kind == "diff":
            return self._compute_diff(job, options, started)
        classes = resolve_classes(job.submission)
        sources = (
            SourceCatalog.native()
            if options["sources"] == "native"
            else SourceCatalog.extended()
        )
        tabby = Tabby(
            sinks=self.sinks,
            sources=sources,
            workers=1,
            cache_dir=self.cache_dir,
        ).add_classes(classes)
        job.phase = "build_cpg"
        cpg = tabby.build_cpg()
        job.progress["cpg"] = _cpg_row(cpg.statistics)
        job.phase = "search"
        refine_modes = tuple(
            m for m in options["refine"].split(",") if m
        ) or None
        chains = tabby.find_gadget_chains(
            max_depth=options["max_depth"],
            source_filter=options["source_filter"],
            refine_guards=options["refine_guards"],
            refine=refine_modes,
        )
        job.progress["search"] = _search_row(tabby.last_search_stats)
        verdict_records: List[Dict[str, Any]] = []
        refine_stats: Dict[str, Any] = {}
        if options["refine_guards"] or refine_modes:
            job.phase = "refine"
            verdict_records = [
                {
                    "steps": [s.qualified for s in chain.steps],
                    "sink_category": chain.sink_category,
                    "status": "refuted",
                    "refutation": reason.as_dict(),
                }
                for chain, reason in tabby.last_refutations
            ]
            if tabby.last_refine is not None:
                refine_stats = tabby.last_refine.statistics
                verdict_records.extend(
                    {
                        "steps": [s.qualified for s in chain.steps],
                        "sink_category": chain.sink_category,
                        "status": verdict.status,
                    }
                    for chain, verdict in zip(
                        tabby.last_refine.chains, tabby.last_refine.verdicts
                    )
                    if verdict.status != "refuted"
                )
        job.phase = "lint"
        lint_records = [issue.to_dict() for issue in lint_classes(classes)]
        job.phase = "fingerprint"
        digest = fingerprint_digest(cpg.graph)
        return JobResult(
            key=job.key,
            chain_records=[
                {
                    "steps": [s.qualified for s in chain.steps],
                    "sink_category": chain.sink_category,
                }
                for chain in chains
            ],
            lint_records=lint_records,
            verdict_records=verdict_records,
            refine_stats=refine_stats,
            graph=cpg.graph,
            fingerprint=digest,
            cpg_row=job.progress["cpg"],
            search_row=job.progress["search"],
            class_count=len(classes),
            compute_seconds=time.perf_counter() - started,
        )

    def _compute_diff(
        self, job: Job, options: Dict[str, Any], started: float
    ) -> JobResult:
        """Two-version chain diff via the incremental analyzer.

        The stored result is keyed by both versions' content hashes, so
        a repeated diff of identical bundles is a pure cache hit.  The
        result carries the NEW version's graph (queryable) and chain
        records, plus the versioned ``tabby-diff/v1`` document under
        ``diff_record``.
        """
        from repro.core.incremental import diff_to_dict
        from repro.jvm import jasm

        split = int(job.submission.payload[0])
        old_chunks = job.submission.payload[1 : 1 + split]
        new_chunks = job.submission.payload[1 + split :]
        old_classes: List[Any] = []
        for chunk in old_chunks:
            old_classes.extend(jasm.loads(chunk))
        new_classes: List[Any] = []
        for chunk in new_chunks:
            new_classes.extend(jasm.loads(chunk))
        sources = (
            SourceCatalog.native()
            if options["sources"] == "native"
            else SourceCatalog.extended()
        )
        tabby = Tabby(
            sinks=self.sinks,
            sources=sources,
            workers=1,
            cache_dir=self.cache_dir,
        )
        job.phase = "diff"
        refine_modes = tuple(
            m for m in options["refine"].split(",") if m
        ) or None
        diff = tabby.diff_versions(
            old_classes,
            new_classes,
            max_depth=options["max_depth"],
            source_filter=options["source_filter"],
            refine_guards=options["refine_guards"],
            refine=refine_modes,
        )
        record = diff_to_dict(diff)
        job.progress["diff"] = record["summary"]
        cpg = tabby.build_cpg()
        job.progress["cpg"] = _cpg_row(cpg.statistics)
        job.progress["search"] = _search_row(tabby.last_search_stats)
        job.phase = "fingerprint"
        digest = fingerprint_digest(cpg.graph)
        return JobResult(
            key=job.key,
            chain_records=record["survived"] + record["appeared"],
            diff_record=record,
            graph=cpg.graph,
            fingerprint=digest,
            cpg_row=job.progress["cpg"],
            search_row=job.progress["search"],
            class_count=len(new_classes),
            compute_seconds=time.perf_counter() - started,
        )

    def _open_snapshot_graph(self, path: str, key: str) -> Any:
        """The opened-graph cache behind snapshot jobs.

        Keyed by path plus the same size+mtime_ns stat token the
        submission key embeds, so a replaced file is a clean miss.  The
        ``key`` (the job's result-store key) is recorded against the
        entry; when the result store's LRU evicts the last result that
        referenced a cached graph, the graph itself is dropped too
        (see :meth:`_result_evicted`).
        """
        st = os.stat(path)
        token = f"{path}|{st.st_size}:{st.st_mtime_ns}"
        with self._snap_lock:
            graph = self._snapshot_graphs.get(token)
            if graph is not None:
                self.snapshot_cache_hits += 1
                self._snapshot_refs[token].add(key)
                self._snapshot_tokens[key] = token
                return graph
        opened = open_graph(path)
        with self._snap_lock:
            graph = self._snapshot_graphs.get(token)
            if graph is not None:  # raced another worker's open
                self.snapshot_cache_hits += 1
            else:
                graph = opened
                self._snapshot_graphs[token] = graph
                self.snapshot_cache_opens += 1
            self._snapshot_refs.setdefault(token, set()).add(key)
            self._snapshot_tokens[key] = token
        return graph

    def _result_evicted(self, key: str, result: JobResult) -> None:
        """Result-store eviction hook: retire the opened snapshot graph
        once no stored result references its file version any more."""
        with self._snap_lock:
            token = self._snapshot_tokens.pop(key, None)
            if token is not None:
                refs = self._snapshot_refs.get(token)
                if refs is not None:
                    refs.discard(key)
                    if not refs:
                        del self._snapshot_refs[token]
                        self._snapshot_graphs.pop(token, None)
        if self._prior_on_evict is not None:
            self._prior_on_evict(key, result)

    def _compute_snapshot(
        self, job: Job, options: Dict[str, Any], started: float
    ) -> JobResult:
        """Search a persisted CPG opened zero-copy from the snapshot dir.

        A v3 snapshot is mmap'd in place — N concurrent snapshot jobs
        over the same file traverse one physical copy — while v1/v2
        files decode per job as ``load_graph`` always has.  The opened
        graph is additionally cached per file version (path + stat
        identity), so repeat jobs over an unchanged file skip even the
        O(header) open/decode; the cache entry is evicted alongside the
        last stored result that used it.  No parse, build, lint or
        refine phases run: the snapshot *is* the CPG, and the
        fingerprint is a digest of the file bytes rather than of a
        rebuilt graph.
        """
        import hashlib

        path = _resolve_snapshot(job.submission.payload[0], self.snapshot_dir)
        job.phase = "open"
        graph = self._open_snapshot_graph(path, job.key)
        statistics = CPGStatistics(
            class_node_count=graph.indexes.label_count(CLASS_LABEL),
            method_node_count=graph.indexes.label_count(METHOD_LABEL),
            relationship_edge_count=graph.relationship_count,
        )
        cpg = CPG(graph, ClassHierarchy([]), statistics, {})
        job.progress["cpg"] = _cpg_row(statistics)
        job.phase = "search"
        finder = GadgetChainFinder(
            cpg,
            max_depth=options["max_depth"],
            workers=1,
        )
        chains = finder.find_chains(source_filter=options["source_filter"])
        job.progress["search"] = _search_row(finder.last_search_stats)
        job.phase = "fingerprint"
        digest = hashlib.sha256()
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                digest.update(block)
        return JobResult(
            key=job.key,
            chain_records=[
                {
                    "steps": [s.qualified for s in chain.steps],
                    "sink_category": chain.sink_category,
                }
                for chain in chains
            ],
            graph=cpg.graph,
            fingerprint=digest.hexdigest(),
            cpg_row=job.progress["cpg"],
            search_row=job.progress["search"],
            class_count=0,
            compute_seconds=time.perf_counter() - started,
        )

    def _compute_live(
        self, job: Job, options: Dict[str, Any], started: float
    ) -> JobResult:
        """Search the version of the shared live CPG this job pinned.

        The pinned graph is a frozen committed MVCC version: the search
        is a pure read over structure shared with every other live job
        and with the current version — no lock, no copy, no reopen.  A
        refresh committed mid-job changes nothing here; the result (and
        its ``/query`` graph) stays bit-identical to the pinned version.
        """
        graph = job.submission.pinned
        if graph is None:  # submissions built without a pin fall back
            graph, _ = self.live.pin()
        cpg = self.live.cpg_view(graph)
        job.progress["cpg"] = _cpg_row(cpg.statistics)
        job.progress["version"] = int(job.submission.payload[0])
        job.phase = "search"
        finder = GadgetChainFinder(
            cpg,
            max_depth=options["max_depth"],
            workers=1,
        )
        chains = finder.find_chains(source_filter=options["source_filter"])
        job.progress["search"] = _search_row(finder.last_search_stats)
        job.phase = "fingerprint"
        digest = fingerprint_digest(graph)
        return JobResult(
            key=job.key,
            chain_records=[
                {
                    "steps": [s.qualified for s in chain.steps],
                    "sink_category": chain.sink_category,
                }
                for chain in chains
            ],
            graph=graph,
            fingerprint=digest,
            cpg_row=job.progress["cpg"],
            search_row=job.progress["search"],
            class_count=0,
            compute_seconds=time.perf_counter() - started,
        )

    # -- shutdown ----------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting work and retire the pool.

        ``drain=True`` lets every already-queued job run to completion
        before the workers exit; ``drain=False`` cancels queued jobs
        immediately (running ones always finish — the pipeline has no
        safe preemption point).  Idempotent.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            if not drain:
                for queued in self._jobs.values():
                    if queued.state == JobState.QUEUED:
                        queued.state = JobState.CANCELLED
                        queued.phase = "cancelled"
                        queued.finished = time.time()
                        self._active.pop(queued.key, None)
                        self.cancelled += 1
                        queued.event.set()
        if already:
            return
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join(timeout=timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._snap_lock:
            snapshot_graphs = {
                "entries": len(self._snapshot_graphs),
                "hits": self.snapshot_cache_hits,
                "opens": self.snapshot_cache_opens,
            }
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "queue_depth": self._queue.qsize(),
                "jobs": len(self._jobs),
                "states": states,
                "submitted": self.submitted,
                "computed": self.computed,
                "attached": self.attached_total,
                "cache_hits": self.cache_hits,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "closed": self._closed,
                "snapshot_graphs": snapshot_graphs,
            }

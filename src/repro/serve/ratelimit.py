"""Per-client token-bucket rate limiting for the submission endpoint.

Each client (the ``X-Client-Id`` header when present, else the peer
address) owns one bucket of ``burst`` tokens refilled continuously at
``rate`` tokens per second.  A submission costs one token; an empty
bucket yields HTTP 429 with a ``Retry-After`` hint of when the next
token lands.  Buckets are lazily created and O(1) per check — the
limiter adds no contention beyond one small lock, which matters
because it sits on the service's hottest path (warm-cache submits).

The clock is injectable so the tests can drive refill deterministically
instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = ["RateLimiter", "TokenBucket"]


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def take(self, now: float) -> Tuple[bool, float]:
        """Try to spend one token at time ``now``.

        Returns ``(allowed, retry_after_seconds)``; ``retry_after`` is
        0.0 when allowed.
        """
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
            self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        needed = 1.0 - self.tokens
        return False, needed / self.rate if self.rate > 0 else float("inf")


class RateLimiter:
    """Lazily-created per-client buckets behind one lock.

    ``rate=None`` disables limiting entirely (every check passes),
    which is the in-process-test and benchmark-warmup default.
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate else 0)
        if rate is not None and self.burst < 1:
            raise ValueError("burst must allow at least one request")
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.allowed = 0
        self.limited = 0

    def check(self, client: str) -> Tuple[bool, float]:
        """Charge one request to ``client``; ``(allowed, retry_after)``."""
        if self.rate is None:
            self.allowed += 1
            return True, 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(self.rate, self.burst, now)
            ok, retry_after = bucket.take(now)
            if ok:
                self.allowed += 1
            else:
                self.limited += 1
            return ok, retry_after

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "clients": len(self._buckets),
                "allowed": self.allowed,
                "limited": self.limited,
                "rate": self.rate if self.rate is not None else 0,
                "burst": self.burst,
            }

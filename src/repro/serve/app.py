"""The REST/JSON layer of ``tabby serve`` — stdlib HTTP, no deps.

Routes::

    POST   /jobs                    submit {"classes": jasm | [jasm...]}
                                    or {"components": [name...]} plus
                                    optional {"options": {...}} ->
                                    202 (new/attached) / 200 (cached)
    GET    /jobs                    job summaries
    GET    /jobs/<id>               state + live per-phase progress
                                    (CPGStatistics/SearchStatistics rows)
    GET    /jobs/<id>/chains        the found gadget chains
    GET    /jobs/<id>/lint          lint issues for the submitted classes
    GET    /jobs/<id>/verdicts      refinement verdicts + refutation reasons
                                    (empty unless options.refine/-guards set)
    GET    /jobs/<id>/diff          the tabby-diff/v1 document (diff jobs:
                                    {"diff": {"old": ..., "new": ...}})
    GET    /jobs/<id>/query?q=...   a Cypher-subset query over the job's CPG
    DELETE /jobs/<id>[?purge=1]     drop the job (purge also evicts its
                                    cached result)
    POST   /live/refresh            commit the on-disk live CPG as the
                                    next MVCC version if it changed
                                    (``--live`` mode; {"force": true}
                                    reloads unconditionally)
    GET    /healthz                 liveness
    GET    /stats                   queue / store / limiter counters
                                    (+ the live graph's version and
                                    memoised fingerprint in --live mode)

Error contract: 400 malformed body or query, 404 unknown job or route,
405 wrong method, 409 results requested before the job is done (or
deleting a running job), 429 rate-limited (with ``Retry-After``),
503 shutting down or queue full.  Every response body is JSON.

``ThreadingHTTPServer`` gives one thread per connection; all shared
state (job table, result store, token buckets) is internally locked,
so the handler itself is stateless.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import GraphError, ReproError
from repro.serve.jobs import JobManager, JobState
from repro.serve.ratelimit import RateLimiter
from repro.serve.store import ResultStore

__all__ = ["TabbyServer", "create_server"]

#: request bodies above this are rejected outright (64 MiB of jasm is
#: far beyond any real submission; this bounds a worker-thread's parse)
MAX_BODY_BYTES = 64 * 1024 * 1024


class TabbyServer(ThreadingHTTPServer):
    """HTTP server owning one :class:`JobManager` and one limiter."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: JobManager,
        limiter: Optional[RateLimiter] = None,
    ):
        super().__init__(address, _Handler)
        self.manager = manager
        self.limiter = limiter if limiter is not None else RateLimiter()

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def run_forever_in_thread(self) -> threading.Thread:
        """Serve on a daemon thread (the in-process test/bench setup)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def close(self, drain: bool = True) -> None:
        """Stop the listener, then drain (or cancel) queued jobs."""
        self.shutdown()
        self.server_close()
        self.manager.shutdown(drain=drain)


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    rate: Optional[float] = None,
    burst: Optional[float] = None,
    store_capacity: int = 256,
    max_queue: int = 0,
    snapshot_dir: Optional[str] = None,
    live: Optional[str] = None,
) -> TabbyServer:
    """Build an unstarted server; ``port=0`` binds an ephemeral port.

    ``rate``/``burst`` configure per-client submission rate limiting
    (None disables); ``workers`` sizes the job worker pool;
    ``cache_dir`` is the shared persistent summary cache handed to
    every job's pipeline; ``snapshot_dir`` enables the ``snapshot``
    job kind — searching persisted CPG files (v3 snapshots are mmap'd,
    so concurrent jobs on one file share a single physical copy);
    ``live`` enables the ``live`` job kind — one shared MVCC-versioned
    CPG loaded from the given file, where every job pins an immutable
    committed version at submission and ``POST /live/refresh`` commits
    new on-disk versions without blocking in-flight readers.
    """
    manager = JobManager(
        workers=workers,
        store=ResultStore(capacity=store_capacity),
        cache_dir=cache_dir,
        max_queue=max_queue,
        snapshot_dir=snapshot_dir,
        live=live,
    )
    limiter = RateLimiter(rate=rate, burst=burst)
    return TabbyServer((host, port), manager, limiter)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # without this, keep-alive clients hit the Nagle/delayed-ACK
    # interaction and every request stalls for ~40ms
    disable_nagle_algorithm = True
    server: TabbyServer  # narrowed for readability

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the caller's business, not stderr's

    def _reply(
        self, code: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, **extra: Any) -> None:
        payload = {"error": message}
        payload.update(extra)
        headers = None
        if "retry_after" in extra:
            headers = {"Retry-After": f"{extra['retry_after']:.3f}"}
        self._reply(code, payload, headers)

    def _client_id(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _read_json_body(self) -> Any:
        length = self.headers.get("Content-Length")
        try:
            length = int(length or "")
        except ValueError:
            raise ValueError("missing or invalid Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValueError("request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed JSON body: {exc}")

    def _job_or_404(self, job_id: str):
        job = self.server.manager.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
        return job

    # -- routing -----------------------------------------------------------

    def do_POST(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path == "/live/refresh":
            self._do_live_refresh()
            return
        if parsed.path != "/jobs":
            self._error(404, f"no such route: POST {parsed.path}")
            return
        allowed, retry_after = self.server.limiter.check(self._client_id())
        if not allowed:
            self._error(429, "rate limited", retry_after=round(retry_after, 3))
            return
        try:
            body = self._read_json_body()
            job, status = self.server.manager.submit(body)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        if status == "closed":
            self._error(503, "server is shutting down")
            return
        if status == "overloaded":
            self._error(503, "job queue is full", retry_after=1.0)
            return
        doc = job.as_dict()
        doc["status"] = status
        self._reply(200 if status == "cached" else 202, doc)

    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parsed.path == "/healthz":
            self._reply(200, {"ok": True, "closed": self.server.manager.closed})
            return
        if parsed.path == "/stats":
            payload = {
                "jobs": self.server.manager.stats(),
                "store": self.server.manager.store.stats(),
                "ratelimit": self.server.limiter.stats(),
            }
            if self.server.manager.live is not None:
                payload["live"] = self.server.manager.live.stats()
            self._reply(200, payload)
            return
        if parsed.path == "/jobs":
            self._reply(
                200, {"jobs": [j.as_dict() for j in self.server.manager.jobs()]}
            )
            return
        if len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._reply(200, job.as_dict())
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] in (
            "chains", "lint", "query", "verdicts", "diff",
        ):
            job = self._job_or_404(parts[1])
            if job is None:
                return
            if job.state != JobState.DONE:
                self._error(
                    409,
                    f"job is {job.state}, results are available once done",
                    state=job.state,
                    **({"detail": job.error} if job.error else {}),
                )
                return
            result = job.result
            if parts[2] == "chains":
                self._reply(
                    200,
                    {
                        "id": job.id,
                        "cached": job.cached,
                        "chains": result.chain_records,
                    },
                )
            elif parts[2] == "lint":
                self._reply(
                    200, {"id": job.id, "issues": result.lint_records}
                )
            elif parts[2] == "diff":
                if job.submission.kind != "diff":
                    self._error(
                        409, "not a diff job; submit {'diff': {...}}"
                    )
                    return
                self._reply(
                    200,
                    {
                        "id": job.id,
                        "cached": job.cached,
                        "diff": result.diff_record,
                    },
                )
            elif parts[2] == "verdicts":
                self._reply(
                    200,
                    {
                        "id": job.id,
                        "cached": job.cached,
                        "verdicts": result.verdict_records,
                        "refinement": result.refine_stats,
                    },
                )
            else:
                self._do_query(job, parsed.query)
            return
        self._error(404, f"no such route: GET {parsed.path}")

    def _do_query(self, job, raw_query: str) -> None:
        from repro.graphdb.query import jsonable_row, run_query

        params = parse_qs(raw_query)
        cypher = (params.get("q") or [None])[0]
        if not cypher:
            self._error(400, "missing query parameter 'q'")
            return
        try:
            result = run_query(job.result.graph, cypher)
        except GraphError as exc:
            self._error(400, f"query failed: {exc}")
            return
        self._reply(
            200,
            {
                "id": job.id,
                "columns": result.columns,
                "rows": [jsonable_row(r) for r in result.rows],
            },
        )

    def _do_live_refresh(self) -> None:
        manager = self.server.manager
        if manager.live is None:
            self._error(
                409, "live mode is disabled (start the server with --live)"
            )
            return
        force = False
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length > 0:
            try:
                body = self._read_json_body()
            except ValueError as exc:
                self._error(400, str(exc))
                return
            if body is not None:
                if not isinstance(body, dict) or set(body) - {"force"}:
                    self._error(400, "body must be {} or {\"force\": bool}")
                    return
                force = bool(body.get("force", False))
        try:
            outcome = manager.live.refresh(force=force)
        except (OSError, ReproError, ValueError) as exc:
            self._error(409, f"refresh failed: {exc}")
            return
        self._reply(200, outcome)

    def do_DELETE(self) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no such route: DELETE {parsed.path}")
            return
        purge = (parse_qs(parsed.query).get("purge") or ["0"])[0] in ("1", "true")
        outcome = self.server.manager.delete(parts[1], purge=purge)
        if outcome == "missing":
            self._error(404, f"no such job: {parts[1]}")
        elif outcome == "running":
            self._error(409, "job is running; results are shared — poll or "
                             "wait for completion before deleting")
        else:
            self._reply(200, {"deleted": parts[1], "purged": purge})

    def do_PUT(self) -> None:
        self._error(405, "method not allowed")

    def do_PATCH(self) -> None:
        self._error(405, "method not allowed")

"""IR/corpus linter built on the generic dataflow framework.

``repro.lint`` goes beyond :mod:`repro.jvm.validate` (which checks
structural well-formedness the way Soot validates Jimple): it runs the
:mod:`repro.jvm.dataflow` analyses over every method body and reports
*semantic* authoring defects — unreachable blocks, use of locals that
may be uninitialised, dead stores, branch guards that constant-fold,
call-arity and static-field mismatches, and duplicate switch cases.

The linter is the first dataflow client: corpus components are authored
by hand (via the builder DSL or jasm text) and defects here historically
surfaced only as mysterious Table IX diffs.  ``tabby lint`` runs it over
jars or the entire shipped corpus; CI runs it with ``--fail-on-error``.

Suppressions
------------

A decoy that *intends* a weird shape (e.g. the constant-false guards of
``plant_guard_decoy``) carries rule names in
``JavaMethod.lint_suppressions`` / ``JavaClass.lint_suppressions``,
authored with ``MethodBuilder.lint_ignore(...)`` or an inline
``# lint: ignore[rule, ...]`` pragma in jasm source.  Suppressed issues
are still produced (marked ``suppressed=True``) so the CLI can count
them; only unsuppressed errors fail a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.jvm import dataflow as df
from repro.jvm import ir
from repro.jvm.cfg import ControlFlowGraph, build_cfg
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod

__all__ = [
    "LintIssue",
    "LINT_RULES",
    "INTERPROCEDURAL_RULES",
    "Linter",
    "lint_classes",
]


#: rule name -> (severity, one-line description)
LINT_RULES: Dict[str, Tuple[str, str]] = {
    "unreachable-code": (
        "error",
        "basic block can never be reached from the method entry",
    ),
    "use-before-init": (
        "error",
        "local may be read before any assignment on some path",
    ),
    "dead-store": (
        "warning",
        "assigned local is never read afterwards (side-effect-free rhs)",
    ),
    "guard-always-false": (
        "warning",
        "branch condition constant-folds to false (guarded code is dead)",
    ),
    "guard-always-true": (
        "warning",
        "branch condition constant-folds to true (fall-through is dead)",
    ),
    "arity-mismatch": (
        "error",
        "call does not match any overload of a defined method",
    ),
    "bad-static-field-ref": (
        "error",
        "static field reference into a defined class that lacks the field",
    ),
    "duplicate-switch-case": (
        "error",
        "switch statement repeats a case value",
    ),
    "taint-unreachable-sink": (
        "warning",
        "sink call whose trigger positions are provably untainted even "
        "for a fully attacker-controlled entry (interprocedural)",
    ),
    "alias-never-instantiated": (
        "warning",
        "class overrides dispatchable methods but no instance of it or "
        "any subtype can exist in the analyzed closure (interprocedural)",
    ),
}

#: rules that need the whole-program summary engines; they run only
#: with ``Linter(..., interprocedural=True)`` (``tabby lint
#: --interprocedural``) because on a decoy-rich corpus they flag every
#: planted fake — by design the corpus is *full* of dead dispatch.
INTERPROCEDURAL_RULES = ("taint-unreachable-sink", "alias-never-instantiated")


@dataclass(frozen=True)
class LintIssue:
    """One linter finding."""

    rule: str
    severity: str  # "error" | "warning"
    class_name: str
    method_name: str
    message: str
    suppressed: bool = False

    def __str__(self) -> str:
        where = self.class_name
        if self.method_name:
            where += f".{self.method_name}"
        tag = " (suppressed)" if self.suppressed else ""
        return f"[{self.severity}] {self.rule} {where}: {self.message}{tag}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "class": self.class_name,
            "method": self.method_name,
            "message": self.message,
            "suppressed": self.suppressed,
        }


class Linter:
    """Lints a class set as one program.

    The constant-propagation rules use a whole-program static-field
    oracle (:func:`repro.jvm.dataflow.constant_static_fields`), so the
    class set should include every class whose writes matter — for
    corpus components, the component plus the lang base.
    """

    def __init__(self, classes: Sequence[JavaClass], interprocedural: bool = False):
        self.classes = list(classes)
        self.hierarchy = ClassHierarchy(self.classes)
        self.static_oracle = df.constant_static_fields(self.classes)
        self.interprocedural = interprocedural
        from repro.core.sinks import SinkCatalog

        self._sink_catalog = SinkCatalog()
        # the two summary-backed rules share the interprocedural
        # engines from repro.analysis; both are built lazily since
        # they cost a whole-program pass
        self._taint_engine = None
        self._type_reachability = None

    def _engines(self):
        if self._taint_engine is None:
            from repro.analysis.rta import TypeReachability
            from repro.analysis.taint import TaintSummaryEngine

            self._taint_engine = TaintSummaryEngine(self.hierarchy)
            self._type_reachability = TypeReachability(self.hierarchy)
        return self._taint_engine, self._type_reachability

    def run(self, only_classes: Optional[Set[str]] = None) -> List[LintIssue]:
        """Lint every method body; returns all issues, suppressed ones
        marked.  ``only_classes`` restricts *reporting* (not analysis)
        to the named classes — used to lint a component against the
        shared runtime without re-reporting runtime issues."""
        issues: List[LintIssue] = []
        for cls in self.classes:
            if only_classes is not None and cls.name not in only_classes:
                continue
            issues.extend(self._lint_class(cls))
            for method in cls.methods.values():
                if method.has_body:
                    issues.extend(self._lint_method(cls, method))
        return issues

    # -- per-class ----------------------------------------------------------

    def _lint_class(self, cls: JavaClass) -> List[LintIssue]:
        """Class-level rules (currently: alias-never-instantiated)."""
        if not self.interprocedural or cls.is_interface or cls.is_abstract:
            return []
        _engine, types = self._engines()
        if types.class_is_live(cls.name):
            return []
        overridden = sorted(
            {
                m.name
                for m in cls.methods.values()
                if m.name not in ("<init>", "<clinit>")
                and self.hierarchy.alias_parents(m)
            }
        )
        if not overridden:
            return []
        rule = "alias-never-instantiated"
        return [
            LintIssue(
                rule,
                LINT_RULES[rule][0],
                cls.name,
                "",
                f"overrides {', '.join(overridden)} but is never "
                "allocated, not serializable, and has no instantiable "
                "subtype — its dispatch edges are dead",
                suppressed=rule in cls.lint_suppressions,
            )
        ]

    # -- per-method ---------------------------------------------------------

    def _lint_method(self, cls: JavaClass, method: JavaMethod) -> List[LintIssue]:
        raw: List[Tuple[str, str]] = []  # (rule, message)

        cfg = build_cfg(method)
        if not cfg.blocks:
            return []

        reachable = self._cfg_reachable(cfg)
        raw.extend(self._check_unreachable(cfg, reachable))
        raw.extend(self._check_use_before_init(cfg, reachable))
        raw.extend(self._check_dead_stores(cfg, reachable))
        raw.extend(self._check_guards(cfg))
        raw.extend(self._check_statements(method))
        raw.extend(self._check_taint_sinks(method))

        suppressions = method.lint_suppressions | cls.lint_suppressions
        issues = []
        for rule, message in raw:
            severity = LINT_RULES[rule][0]
            issues.append(
                LintIssue(
                    rule,
                    severity,
                    cls.name,
                    method.name,
                    message,
                    suppressed=rule in suppressions,
                )
            )
        return issues

    @staticmethod
    def _cfg_reachable(cfg: ControlFlowGraph) -> Set[int]:
        seen: Set[int] = set()
        stack = [cfg.blocks[0]]
        while stack:
            block = stack.pop()
            if block.index in seen:
                continue
            seen.add(block.index)
            stack.extend(block.successors)
        return seen

    def _check_unreachable(self, cfg, reachable) -> List[Tuple[str, str]]:
        out = []
        for block in cfg.blocks:
            if block.index not in reachable:
                out.append(
                    (
                        "unreachable-code",
                        f"block {block.index} starting at `{block.first}` is "
                        "unreachable",
                    )
                )
        return out

    def _check_use_before_init(self, cfg, reachable) -> List[Tuple[str, str]]:
        result = df.run_analysis(cfg, df.Nullness())
        out = []
        flagged: Set[str] = set()
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            for stmt, before, _after in result.statement_states(block):
                for name in df.statement_uses(stmt):
                    if name in flagged:
                        continue
                    fact = before.get(name)
                    if fact is None:
                        flagged.add(name)
                        out.append(
                            (
                                "use-before-init",
                                f"local `{name}` read in `{stmt}` but never "
                                "assigned on any path",
                            )
                        )
                    elif not fact.definite:
                        flagged.add(name)
                        out.append(
                            (
                                "use-before-init",
                                f"local `{name}` read in `{stmt}` may be "
                                "uninitialised on some path",
                            )
                        )
        return out

    def _check_dead_stores(self, cfg, reachable) -> List[Tuple[str, str]]:
        result = df.run_analysis(cfg, df.Liveness())
        out = []
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            for stmt, _before, after in result.statement_states(block):
                if not isinstance(stmt, ir.AssignStmt):
                    continue
                if not isinstance(stmt.target, ir.Local):
                    continue
                if isinstance(stmt.rhs, ir.InvokeExpr):
                    continue  # the call's side effect keeps the store
                if stmt.target.name not in after:
                    out.append(
                        (
                            "dead-store",
                            f"`{stmt}` assigns a local that is never read",
                        )
                    )
        return out

    def _check_guards(self, cfg) -> List[Tuple[str, str]]:
        analysis = df.ConstantPropagation(static_oracle=self.static_oracle)
        df.run_analysis(cfg, analysis)
        out = []
        for block_index in sorted(analysis.branch_verdicts):
            verdict = analysis.branch_verdicts[block_index]
            stmt = cfg.blocks[block_index].last
            out.append(
                (
                    f"guard-{verdict}",
                    f"`{stmt}` is {verdict.replace('-', ' ')} "
                    "(condition folds to a constant)",
                )
            )
        return out

    def _check_taint_sinks(self, method: JavaMethod) -> List[Tuple[str, str]]:
        """Flag sink-catalog calls whose every trigger position is
        untainted in the method's taint summary — those sites cannot
        fire no matter what the caller passes in, so a chain ending
        there is decorative."""
        if not self.interprocedural:
            return []
        from repro.analysis.taint import is_untainted

        engine, _types = self._engines()
        summary = engine.summary_for(method)
        if summary is None:
            return []
        out = []
        for site in summary.sites:
            sink = self._sink_catalog.lookup(site.class_name, site.method_name)
            if sink is None or not sink.trigger_condition:
                continue
            tc = [p for p in sink.trigger_condition if p < len(site.positions)]
            if not tc:
                continue  # conservative: TC outside the site's width
            if all(is_untainted(site.positions[p]) for p in tc):
                out.append(
                    (
                        "taint-unreachable-sink",
                        f"call to sink {site.class_name}."
                        f"{site.method_name} can never fire: trigger "
                        f"position(s) {sorted(tc)} are untainted for any "
                        "caller",
                    )
                )
        return out

    def _check_statements(self, method: JavaMethod) -> List[Tuple[str, str]]:
        out = []
        for stmt in method.body:
            invoke = stmt.invoke_expr()
            if invoke is not None and invoke.kind != ir.InvokeKind.DYNAMIC:
                if self.hierarchy.get(invoke.class_name) is not None:
                    resolved = self.hierarchy.resolve_method(
                        invoke.class_name, invoke.method_name, invoke.arity
                    )
                    if resolved is None and self._any_arity(
                        invoke.class_name, invoke.method_name
                    ):
                        out.append(
                            (
                                "arity-mismatch",
                                f"call to {invoke.class_name}."
                                f"{invoke.method_name} with {invoke.arity} "
                                "argument(s) matches no overload",
                            )
                        )
            if isinstance(stmt, ir.AssignStmt):
                for value in (stmt.target, stmt.rhs):
                    if isinstance(value, ir.StaticFieldRef):
                        if (
                            self.hierarchy.get(value.class_name) is not None
                            and not self._field_exists(
                                value.class_name, value.field_name
                            )
                        ):
                            out.append(
                                (
                                    "bad-static-field-ref",
                                    f"static field {value.class_name}."
                                    f"{value.field_name} is not declared",
                                )
                            )
            if isinstance(stmt, ir.SwitchStmt):
                seen: Set[int] = set()
                for value, _label in stmt.cases:
                    if value in seen:
                        out.append(
                            (
                                "duplicate-switch-case",
                                f"`{stmt}` repeats case value {value}",
                            )
                        )
                    seen.add(value)
        return out

    def _any_arity(self, class_name: str, method_name: str) -> bool:
        for name in (class_name,) + self.hierarchy.supertypes(class_name):
            cls = self.hierarchy.get(name)
            if cls is not None and cls.find_method(method_name) is not None:
                return True
        return False

    def _field_exists(self, class_name: str, field_name: str) -> bool:
        for name in (class_name,) + self.hierarchy.supertypes(class_name):
            cls = self.hierarchy.get(name)
            if cls is not None and cls.field(field_name) is not None:
                return True
        return False


def lint_classes(
    classes: Sequence[JavaClass],
    only_classes: Optional[Set[str]] = None,
    interprocedural: bool = False,
) -> List[LintIssue]:
    """Convenience wrapper: lint ``classes`` as one program."""
    return Linter(classes, interprocedural=interprocedural).run(
        only_classes=only_classes
    )

"""Tabby reproduction: automated gadget chain detection for Java
deserialization vulnerabilities (Chen et al., DSN 2023), in pure Python.

Quickstart::

    from repro import Tabby
    from repro.corpus import build_lang_base, build_jdk8_extras

    tabby = Tabby().add_classes(build_lang_base() + build_jdk8_extras())
    for chain in tabby.find_gadget_chains():
        print(chain.render())          # URLDNS, among others

See README.md for the architecture overview and DESIGN.md for the
system inventory and per-experiment index.
"""

from repro.core import (
    CPG,
    GadgetChain,
    GadgetChainFinder,
    SinkCatalog,
    SinkMethod,
    SourceCatalog,
    Tabby,
)
from repro.verify import ChainVerifier

__version__ = "1.0.0"

__all__ = [
    "Tabby",
    "CPG",
    "GadgetChain",
    "GadgetChainFinder",
    "SinkCatalog",
    "SinkMethod",
    "SourceCatalog",
    "ChainVerifier",
    "__version__",
]

"""Java class/method/field model.

Replaces Soot's ``SootClass``/``SootMethod``/``SootField``.  A
:class:`JavaClass` carries the class-level semantic information Tabby
extracts in §III-B1 of the paper: name, modifiers, superclass,
interfaces, fields, and methods.  A :class:`JavaMethod` carries its
signature, modifiers, and a body of IR statements (see
:mod:`repro.jvm.ir`).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.errors import ClassModelError
from repro.jvm import types as jt

if TYPE_CHECKING:  # pragma: no cover
    from repro.jvm.ir import Statement

__all__ = [
    "Modifier",
    "MethodSignature",
    "JavaField",
    "JavaMethod",
    "JavaClass",
    "SERIALIZABLE",
    "EXTERNALIZABLE",
]

#: dotted names of the two marker interfaces that make a class serializable
SERIALIZABLE = "java.io.Serializable"
EXTERNALIZABLE = "java.io.Externalizable"


class Modifier(enum.IntFlag):
    """JVM access/modifier flags (subset relevant to the analysis)."""

    PUBLIC = 0x0001
    PRIVATE = 0x0002
    PROTECTED = 0x0004
    STATIC = 0x0008
    FINAL = 0x0010
    SYNCHRONIZED = 0x0020
    VOLATILE = 0x0040
    TRANSIENT = 0x0080
    NATIVE = 0x0100
    INTERFACE = 0x0200
    ABSTRACT = 0x0400

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "Modifier":
        flags = cls(0)
        for name in names:
            try:
                flags |= cls[name.upper()]
            except KeyError:
                raise ClassModelError(f"unknown modifier: {name!r}") from None
        return flags

    def names(self) -> List[str]:
        return [m.name.lower() for m in Modifier if m & self and m.name]


class MethodSignature:
    """Immutable method signature: owner class, name, params, return type.

    ``key`` (name + parameter count + erased return kind) is the alias
    key from §III-B2: methods with the same name, return value and number
    of parameters are alias candidates.
    """

    __slots__ = ("class_name", "name", "param_types", "return_type", "_sig")

    def __init__(
        self,
        class_name: str,
        name: str,
        param_types: Sequence[jt.JavaType],
        return_type: jt.JavaType,
    ):
        if not name:
            raise ClassModelError("method name must be non-empty")
        self.class_name = class_name
        self.name = name
        self.param_types = tuple(param_types)
        self.return_type = return_type
        params = ",".join(t.name for t in self.param_types)
        self._sig = f"<{class_name}: {return_type.name} {name}({params})>"

    @property
    def signature(self) -> str:
        """Soot-style full signature string."""
        return self._sig

    @property
    def sub_signature(self) -> str:
        """Signature without the owning class (used for overriding checks)."""
        params = ",".join(t.name for t in self.param_types)
        return f"{self.return_type.name} {self.name}({params})"

    @property
    def alias_key(self) -> Tuple[str, int]:
        """Key under which alias candidates are grouped (paper §III-B2)."""
        return (self.name, len(self.param_types))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MethodSignature) and self._sig == other._sig

    def __hash__(self) -> int:
        return hash(self._sig)

    def __repr__(self) -> str:
        return f"MethodSignature({self._sig!r})"

    def __str__(self) -> str:
        return self._sig


class JavaField:
    """A field declaration inside a class."""

    __slots__ = ("name", "type", "modifiers", "owner")

    def __init__(
        self,
        name: str,
        ftype: jt.JavaType,
        modifiers: Modifier = Modifier.PUBLIC,
    ):
        if not name:
            raise ClassModelError("field name must be non-empty")
        self.name = name
        self.type = ftype
        self.modifiers = modifiers
        self.owner: Optional["JavaClass"] = None

    @property
    def is_static(self) -> bool:
        return bool(self.modifiers & Modifier.STATIC)

    @property
    def is_transient(self) -> bool:
        return bool(self.modifiers & Modifier.TRANSIENT)

    def __repr__(self) -> str:
        return f"JavaField({self.type.name} {self.name})"


class JavaMethod:
    """A method with signature, modifiers, locals and an IR body.

    The body is a flat list of :class:`~repro.jvm.ir.Statement`; branch
    targets are statement indexes resolved by the CFG builder.
    Abstract/native/interface methods have an empty body and
    ``has_body`` False.
    """

    def __init__(
        self,
        name: str,
        param_types: Sequence[jt.JavaType] = (),
        return_type: jt.JavaType = jt.VOID,
        modifiers: Modifier = Modifier.PUBLIC,
        param_names: Optional[Sequence[str]] = None,
    ):
        self.name = name
        self.param_types = tuple(param_types)
        self.return_type = return_type
        self.modifiers = modifiers
        if param_names is None:
            param_names = [f"p{i}" for i in range(1, len(self.param_types) + 1)]
        if len(param_names) != len(self.param_types):
            raise ClassModelError(
                f"{name}: {len(param_names)} parameter names for "
                f"{len(self.param_types)} parameter types"
            )
        self.param_names = tuple(param_names)
        self.body: List["Statement"] = []
        self.owner: Optional["JavaClass"] = None
        #: lint rule names suppressed for this method (``repro.lint``);
        #: authored via the builder DSL or a ``# lint: ignore[...]``
        #: pragma in jasm source.
        self.lint_suppressions: Set[str] = set()

    # -- identity ---------------------------------------------------------

    @property
    def class_name(self) -> str:
        if self.owner is None:
            raise ClassModelError(f"method {self.name} not attached to a class")
        return self.owner.name

    @property
    def signature(self) -> MethodSignature:
        return MethodSignature(
            self.class_name, self.name, self.param_types, self.return_type
        )

    # -- predicates --------------------------------------------------------

    @property
    def is_static(self) -> bool:
        return bool(self.modifiers & Modifier.STATIC)

    @property
    def is_abstract(self) -> bool:
        return bool(self.modifiers & Modifier.ABSTRACT)

    @property
    def is_native(self) -> bool:
        return bool(self.modifiers & Modifier.NATIVE)

    @property
    def is_constructor(self) -> bool:
        return self.name == "<init>"

    @property
    def is_static_initializer(self) -> bool:
        return self.name == "<clinit>"

    @property
    def has_body(self) -> bool:
        return bool(self.body)

    @property
    def arity(self) -> int:
        return len(self.param_types)

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else "?"
        return f"JavaMethod(<{owner}: {self.name}/{self.arity}>)"


class JavaClass:
    """A class or interface definition.

    ``super_name`` is a dotted class name (``None`` only for
    ``java.lang.Object``); ``interface_names`` are dotted names of
    directly implemented/extended interfaces.  Resolution of names to
    :class:`JavaClass` objects happens in :mod:`repro.jvm.hierarchy`.
    """

    def __init__(
        self,
        name: str,
        super_name: Optional[str] = "java.lang.Object",
        interface_names: Sequence[str] = (),
        modifiers: Modifier = Modifier.PUBLIC,
    ):
        jt.class_type(name)  # validates the name
        if name == "java.lang.Object":
            super_name = None
        self.name = name
        self.super_name = super_name
        self.interface_names: Tuple[str, ...] = tuple(interface_names)
        self.modifiers = modifiers
        self.fields: Dict[str, JavaField] = {}
        self.methods: Dict[str, JavaMethod] = {}  # keyed by sub_signature
        #: name of the jar archive this class came from, if any
        self.jar_name: Optional[str] = None
        #: lint rule names suppressed for every method of this class
        self.lint_suppressions: Set[str] = set()

    # -- construction -------------------------------------------------------

    def add_field(self, field: JavaField) -> JavaField:
        if field.name in self.fields:
            raise ClassModelError(f"duplicate field {self.name}.{field.name}")
        field.owner = self
        self.fields[field.name] = field
        return field

    def add_method(self, method: JavaMethod) -> JavaMethod:
        method.owner = self
        key = method.signature.sub_signature
        if key in self.methods:
            raise ClassModelError(f"duplicate method {self.name}.{key}")
        self.methods[key] = method
        return method

    # -- lookup --------------------------------------------------------------

    def field(self, name: str) -> Optional[JavaField]:
        return self.fields.get(name)

    def method(self, sub_signature: str) -> Optional[JavaMethod]:
        return self.methods.get(sub_signature)

    def methods_named(self, name: str) -> List[JavaMethod]:
        return [m for m in self.methods.values() if m.name == name]

    def find_method(self, name: str, arity: Optional[int] = None) -> Optional[JavaMethod]:
        """First method matching ``name`` (and ``arity`` when given)."""
        for m in self.methods.values():
            if m.name == name and (arity is None or m.arity == arity):
                return m
        return None

    # -- predicates -----------------------------------------------------------

    @property
    def is_interface(self) -> bool:
        return bool(self.modifiers & Modifier.INTERFACE)

    @property
    def is_abstract(self) -> bool:
        return bool(self.modifiers & Modifier.ABSTRACT)

    @property
    def declares_serializable(self) -> bool:
        """Whether this class *directly* names a serialization interface."""
        return SERIALIZABLE in self.interface_names or (
            EXTERNALIZABLE in self.interface_names
        )

    @property
    def type(self) -> jt.ClassType:
        return jt.class_type(self.name)

    @property
    def package(self) -> str:
        return self.type.package

    def __repr__(self) -> str:
        kind = "interface" if self.is_interface else "class"
        return f"JavaClass({kind} {self.name})"

"""Java type model.

This module replaces the type layer of Soot.  It models the Java type
system at the granularity Tabby's analysis needs: primitive types,
class/interface reference types, and array types, plus JVM-style
descriptor parsing (``Ljava/lang/Object;``, ``[I`` ...) and the
human-readable dotted form (``java.lang.Object``, ``int[]``).

Types are interned: constructing the same type twice yields the same
object, so identity comparison is valid and type sets stay small even
for large corpora.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import TypeModelError

__all__ = [
    "JavaType",
    "PrimitiveType",
    "ClassType",
    "ArrayType",
    "VoidType",
    "parse_descriptor",
    "parse_method_descriptor",
    "type_from_name",
    "BOOLEAN",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "VOID",
    "OBJECT",
    "STRING",
    "CLASS",
    "THROWABLE",
]


class JavaType:
    """Base class for all Java types.

    Instances are immutable and interned; use ``is`` or ``==``
    interchangeably for comparison.
    """

    #: dotted human-readable name, e.g. ``java.lang.Object`` or ``int[]``
    name: str
    #: JVM descriptor, e.g. ``Ljava/lang/Object;`` or ``[I``
    descriptor: str

    def __init__(self, name: str, descriptor: str):
        self.name = name
        self.descriptor = descriptor

    @property
    def is_primitive(self) -> bool:
        return isinstance(self, PrimitiveType)

    @property
    def is_reference(self) -> bool:
        return isinstance(self, (ClassType, ArrayType))

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, JavaType) and self.descriptor == other.descriptor
        )

    def __hash__(self) -> int:
        return hash(self.descriptor)


class PrimitiveType(JavaType):
    """One of the eight Java primitive types."""

    _DESCRIPTORS = {
        "boolean": "Z",
        "byte": "B",
        "char": "C",
        "short": "S",
        "int": "I",
        "long": "J",
        "float": "F",
        "double": "D",
    }

    def __init__(self, name: str):
        if name not in self._DESCRIPTORS:
            raise TypeModelError(f"not a primitive type: {name!r}")
        super().__init__(name, self._DESCRIPTORS[name])


class VoidType(JavaType):
    """The ``void`` pseudo-type (valid only as a return type)."""

    def __init__(self) -> None:
        super().__init__("void", "V")


class ClassType(JavaType):
    """A class or interface reference type, e.g. ``java.util.HashMap``."""

    def __init__(self, name: str):
        if not name or name.startswith(".") or name.endswith("."):
            raise TypeModelError(f"invalid class name: {name!r}")
        if "/" in name or ";" in name or "[" in name:
            raise TypeModelError(
                f"class names use dotted form, got descriptor-like {name!r}"
            )
        descriptor = "L" + name.replace(".", "/") + ";"
        super().__init__(name, descriptor)

    @property
    def package(self) -> str:
        """Package part of the name (empty string for the default package)."""
        head, _, _ = self.name.rpartition(".")
        return head

    @property
    def simple_name(self) -> str:
        """Class name without its package."""
        _, _, tail = self.name.rpartition(".")
        return tail


class ArrayType(JavaType):
    """An array type; ``element`` may itself be an array (multi-dim)."""

    def __init__(self, element: JavaType):
        if element.is_void:
            raise TypeModelError("void[] is not a valid type")
        super().__init__(element.name + "[]", "[" + element.descriptor)
        self.element = element

    @property
    def dimensions(self) -> int:
        dims = 1
        elem = self.element
        while isinstance(elem, ArrayType):
            dims += 1
            elem = elem.element
        return dims

    @property
    def base_element(self) -> JavaType:
        """Innermost non-array element type."""
        elem = self.element
        while isinstance(elem, ArrayType):
            elem = elem.element
        return elem


_INTERNED: Dict[str, JavaType] = {}


def _intern(t: JavaType) -> JavaType:
    return _INTERNED.setdefault(t.descriptor, t)


def primitive(name: str) -> PrimitiveType:
    """Interned primitive type by Java keyword (``int``, ``boolean`` ...)."""
    t = _intern(PrimitiveType(name))
    assert isinstance(t, PrimitiveType)
    return t


def class_type(name: str) -> ClassType:
    """Interned class type by dotted name."""
    t = _intern(ClassType(name))
    assert isinstance(t, ClassType)
    return t


def array_of(element: JavaType, dimensions: int = 1) -> ArrayType:
    """Interned array type over ``element`` with ``dimensions`` levels."""
    if dimensions < 1:
        raise TypeModelError("array dimensions must be >= 1")
    t: JavaType = element
    for _ in range(dimensions):
        t = _intern(ArrayType(t))
    assert isinstance(t, ArrayType)
    return t


BOOLEAN = primitive("boolean")
BYTE = primitive("byte")
CHAR = primitive("char")
SHORT = primitive("short")
INT = primitive("int")
LONG = primitive("long")
FLOAT = primitive("float")
DOUBLE = primitive("double")
VOID = _intern(VoidType())

OBJECT = class_type("java.lang.Object")
STRING = class_type("java.lang.String")
CLASS = class_type("java.lang.Class")
THROWABLE = class_type("java.lang.Throwable")

_PRIMITIVE_BY_DESC = {
    "Z": BOOLEAN,
    "B": BYTE,
    "C": CHAR,
    "S": SHORT,
    "I": INT,
    "J": LONG,
    "F": FLOAT,
    "D": DOUBLE,
}

_PRIMITIVE_NAMES = set(PrimitiveType._DESCRIPTORS)


def parse_descriptor(descriptor: str) -> JavaType:
    """Parse a single JVM field descriptor into a type.

    >>> parse_descriptor("Ljava/lang/String;").name
    'java.lang.String'
    >>> parse_descriptor("[[I").name
    'int[][]'
    """
    t, rest = _parse_one(descriptor, 0)
    if rest != len(descriptor):
        raise TypeModelError(f"trailing characters in descriptor: {descriptor!r}")
    return t


def _parse_one(descriptor: str, pos: int) -> Tuple[JavaType, int]:
    if pos >= len(descriptor):
        raise TypeModelError(f"truncated descriptor: {descriptor!r}")
    ch = descriptor[pos]
    if ch in _PRIMITIVE_BY_DESC:
        return _PRIMITIVE_BY_DESC[ch], pos + 1
    if ch == "V":
        return VOID, pos + 1
    if ch == "[":
        elem, end = _parse_one(descriptor, pos + 1)
        return array_of(elem), end
    if ch == "L":
        end = descriptor.find(";", pos)
        if end < 0:
            raise TypeModelError(f"unterminated class descriptor: {descriptor!r}")
        internal = descriptor[pos + 1 : end]
        if not internal:
            raise TypeModelError(f"empty class descriptor: {descriptor!r}")
        return class_type(internal.replace("/", ".")), end + 1
    raise TypeModelError(f"bad descriptor character {ch!r} in {descriptor!r}")


def parse_method_descriptor(descriptor: str) -> Tuple[Tuple[JavaType, ...], JavaType]:
    """Parse a JVM method descriptor, e.g. ``(ILjava/lang/String;)V``.

    Returns ``(parameter_types, return_type)``.
    """
    if not descriptor.startswith("("):
        raise TypeModelError(f"method descriptor must start with '(': {descriptor!r}")
    close = descriptor.find(")")
    if close < 0:
        raise TypeModelError(f"method descriptor missing ')': {descriptor!r}")
    params = []
    pos = 1
    while pos < close:
        t, pos = _parse_one(descriptor, pos)
        if t.is_void:
            raise TypeModelError("void is not a valid parameter type")
        params.append(t)
    if pos != close:
        raise TypeModelError(f"malformed parameter list: {descriptor!r}")
    ret = parse_descriptor(descriptor[close + 1 :])
    return tuple(params), ret


def type_from_name(name: str) -> JavaType:
    """Parse a human-readable type name (``int``, ``java.util.Map[]`` ...)."""
    name = name.strip()
    if not name:
        raise TypeModelError("empty type name")
    dims = 0
    while name.endswith("[]"):
        dims += 1
        name = name[:-2].strip()
    if name == "void":
        base: JavaType = VOID
    elif name in _PRIMITIVE_NAMES:
        base = primitive(name)
    else:
        base = class_type(name)
    if dims:
        return array_of(base, dims)
    return base


def erased_match(a: JavaType, b: JavaType) -> bool:
    """Loose compatibility used by alias matching.

    Two reference types always erased-match (polymorphism may substitute
    any reference); primitives must match exactly.  This mirrors the
    paper's alias rule of "same name, return value and parameter count".
    """
    if a.is_reference and b.is_reference:
        return True
    return a == b

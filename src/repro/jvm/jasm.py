"""jasm — the textual form of the IR.

Where the paper's Tabby consumes Java bytecode inside jar files, this
reproduction consumes *jasm*: a Jimple-flavoured assembly language that
round-trips the IR of :mod:`repro.jvm.ir`.  Jar archives
(:mod:`repro.jvm.jar`) are zip files of ``.jasm`` entries.

Grammar sketch::

    program   := classdecl*
    classdecl := ("class" | "interface") QNAME
                 ["extends" QNAME] ["implements" QNAME ("," QNAME)*]
                 "{" member* "}"
    member    := "field"  modifier* TYPE NAME ";"
               | "method" modifier* TYPE NAME "(" [TYPE NAME ("," TYPE NAME)*] ")"
                 ( ";" | "{" stmt* "}" )
    stmt      := [NAME ":"] body ";"
    body      := NAME ":=" ("@this" | "@param-"INT)
               | ref "=" rhs
               | invoke | "return" [val] | "if" val "goto" NAME
               | "goto" NAME | "throw" val | "nop"
               | "switch" val "{" ("case" INT ":" "goto" NAME)*
                                  "default" ":" "goto" NAME "}"
    ref       := NAME | NAME "." NAME | NAME "[" val "]" | "static" QNAME
    rhs       := val | ref | "new" QNAME | "newarray" TYPE "[" val "]"
               | "(" TYPE ")" val | val "instanceof" TYPE
               | val BINOP val | invoke
    invoke    := KIND [NAME] QNAME "(" [val ("," val)*] ")"
    val       := NAME | INT | STRING | "null" | "class" QNAME

A ``static`` reference writes the class and field as one dotted path;
the final segment is the field name (``static java.lang.System.out``).
An invoke writes the optional receiver local, then the dotted
class-and-method path, e.g. ``virtual rt java.lang.Runtime.exec(cmd)``
or ``static java.lang.Runtime.getRuntime()``; ``<init>`` and
``<clinit>`` are valid final segments.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import JasmSyntaxError
from repro.jvm import ir
from repro.jvm import types as jt
from repro.jvm.model import JavaClass, JavaField, JavaMethod, Modifier

__all__ = ["dumps", "loads", "dump_class", "Lexer", "Parser", "Token"]

_MODIFIER_NAMES = (
    "public",
    "private",
    "protected",
    "static",
    "final",
    "abstract",
    "native",
    "transient",
    "synchronized",
    "volatile",
)

_KEYWORDS = {
    "class",
    "interface",
    "extends",
    "implements",
    "field",
    "method",
    "return",
    "if",
    "goto",
    "switch",
    "case",
    "default",
    "throw",
    "nop",
    "new",
    "newarray",
    "instanceof",
    "null",
    "static",
    *_MODIFIER_NAMES,
} | set(ir.InvokeKind.ALL)


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------


class Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


# ``# lint: ignore[rule, ...]`` comments survive the lexer as pragma
# tokens; every other comment is discarded.
_LINT_PRAGMA_RE = re.compile(r"^(?://|\#)\s*lint:\s*ignore\[([^\]]*)\]\s*$")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<atref>@this|@param-\d+)
  | (?P<assign_id>:=)
  | (?P<int>-?\d+)
  | (?P<qname>[A-Za-z_$<][\w$>]*(?:\.[A-Za-z_$<][\w$>]*)+)
  | (?P<name>[A-Za-z_$<][\w$>]*)
  | (?P<op>==|!=|<=|>=|\|\||&&|\[\]|[{}()\[\];:,.=<>+\-*/%&|^])
    """,
    re.VERBOSE,
)


class Lexer:
    """Tokenises jasm source."""

    def __init__(self, source: str):
        self.source = source

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        pos = 0
        line = 1
        col = 1
        n = len(self.source)
        while pos < n:
            m = _TOKEN_RE.match(self.source, pos)
            if m is None:
                raise JasmSyntaxError(
                    f"unexpected character {self.source[pos]!r}", line, col
                )
            kind = m.lastgroup or ""
            text = m.group()
            if kind == "nl":
                line += 1
                col = 1
            elif kind == "comment":
                pragma = _LINT_PRAGMA_RE.match(text)
                if pragma is not None:
                    out.append(Token("pragma", pragma.group(1), line, col))
                col += len(text)
            elif kind == "ws":
                col += len(text)
            else:
                tkind = kind
                if kind in ("name", "qname") and text in _KEYWORDS:
                    tkind = "kw"
                out.append(Token(tkind, text, line, col))
                col += len(text)
            pos = m.end()
        out.append(Token("eof", "", line, col))
        return out


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def _pragma_rules(text: str) -> List[str]:
    """Rule names from the bracket payload of a lint pragma."""
    return [rule.strip() for rule in text.split(",") if rule.strip()]


class Parser:
    """Recursive-descent parser producing :class:`JavaClass` objects."""

    def __init__(self, source: str):
        self._tokens = Lexer(source).tokens()
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise JasmSyntaxError(
                f"expected {want!r}, got {tok.text!r}", tok.line, tok.column
            )
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    def _error(self, message: str) -> JasmSyntaxError:
        tok = self._peek()
        return JasmSyntaxError(message + f", got {tok.text!r}", tok.line, tok.column)

    # -- grammar -----------------------------------------------------------------

    def parse_program(self) -> List[JavaClass]:
        classes: List[JavaClass] = []
        while self._peek().kind != "eof":
            classes.append(self.parse_class())
        return classes

    def parse_class(self) -> JavaClass:
        modifiers = Modifier.PUBLIC
        is_interface = False
        tok = self._next()
        if tok.kind == "kw" and tok.text == "interface":
            is_interface = True
            modifiers |= Modifier.INTERFACE | Modifier.ABSTRACT
        elif not (tok.kind == "kw" and tok.text == "class"):
            raise JasmSyntaxError(
                f"expected 'class' or 'interface', got {tok.text!r}",
                tok.line,
                tok.column,
            )
        name = self._qname()
        super_name: Optional[str] = "java.lang.Object"
        interfaces: List[str] = []
        if self._accept("kw", "extends"):
            super_name = self._qname()
        if name == "java.lang.Object":
            super_name = None
        if self._accept("kw", "implements"):
            interfaces.append(self._qname())
            while self._accept("op", ","):
                interfaces.append(self._qname())
        cls = JavaClass(name, super_name, interfaces, modifiers)
        self._expect("op", "{")
        while not self._accept("op", "}"):
            kw = self._peek()
            if kw.kind == "pragma":
                cls.lint_suppressions.update(_pragma_rules(self._next().text))
            elif kw.kind == "kw" and kw.text == "field":
                self._parse_field(cls)
            elif kw.kind == "kw" and kw.text == "method":
                self._parse_method(cls, is_interface)
            else:
                raise self._error("expected 'field' or 'method'")
        return cls

    def _qname(self) -> str:
        tok = self._next()
        if tok.kind not in ("name", "qname"):
            raise JasmSyntaxError(
                f"expected a name, got {tok.text!r}", tok.line, tok.column
            )
        return tok.text

    def _modifiers(self) -> Modifier:
        flags = Modifier(0)
        while True:
            tok = self._peek()
            if tok.kind == "kw" and tok.text in _MODIFIER_NAMES:
                self._next()
                flags |= Modifier[tok.text.upper()]
            else:
                break
        return flags or Modifier.PUBLIC

    def _type(self) -> jt.JavaType:
        name = self._qname()
        dims = 0
        while self._peek().kind == "op" and self._peek().text == "[]":
            self._next()
            dims += 1
        # also accept explicit '[' ']' pairs
        while (
            self._peek().text == "["
            and self._peek(1).text == "]"
        ):
            self._next()
            self._next()
            dims += 1
        base = jt.type_from_name(name)
        if dims:
            return jt.array_of(base, dims)
        return base

    def _identifier(self) -> str:
        """An identifier position: keywords are acceptable names here
        (Java fields/parameters may legitimately be called ``method``,
        ``class`` has no such clash in jasm grammar positions)."""
        tok = self._next()
        if tok.kind not in ("name", "kw"):
            raise JasmSyntaxError(
                f"expected an identifier, got {tok.text!r}", tok.line, tok.column
            )
        return tok.text

    def _parse_field(self, cls: JavaClass) -> None:
        self._expect("kw", "field")
        modifiers = self._modifiers()
        ftype = self._type()
        name = self._identifier()
        self._expect("op", ";")
        cls.add_field(JavaField(name, ftype, modifiers))

    def _parse_method(self, cls: JavaClass, in_interface: bool) -> None:
        self._expect("kw", "method")
        modifiers = self._modifiers()
        rtype = self._type()
        name = self._qname()
        self._expect("op", "(")
        ptypes: List[jt.JavaType] = []
        pnames: List[str] = []
        if not self._accept("op", ")"):
            while True:
                ptypes.append(self._type())
                pnames.append(self._identifier())
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        if in_interface:
            modifiers |= Modifier.ABSTRACT
        method = JavaMethod(name, ptypes, rtype, modifiers, pnames)
        cls.add_method(method)
        if self._accept("op", ";"):
            return
        self._expect("op", "{")
        body: List[ir.Statement] = []
        while not self._accept("op", "}"):
            if self._peek().kind == "pragma":
                method.lint_suppressions.update(_pragma_rules(self._next().text))
                continue
            body.append(self._parse_statement())
        method.body = body

    # -- statements --------------------------------------------------------------

    def _parse_statement(self) -> ir.Statement:
        label: Optional[str] = None
        if (
            self._peek().kind == "name"
            and self._peek(1).kind == "op"
            and self._peek(1).text == ":"
        ):
            label = self._next().text
            self._next()
        stmt = self._parse_statement_body()
        stmt.label = label
        self._expect("op", ";")
        return stmt

    def _parse_statement_body(self) -> ir.Statement:
        tok = self._peek()
        if tok.kind == "kw":
            if tok.text == "return":
                self._next()
                if self._peek().text == ";":
                    return ir.ReturnStmt(None)
                return ir.ReturnStmt(self._parse_value())
            if tok.text == "if":
                self._next()
                cond = self._parse_value()
                self._expect("kw", "goto")
                return ir.IfStmt(cond, self._qname())
            if tok.text == "goto":
                self._next()
                return ir.GotoStmt(self._qname())
            if tok.text == "throw":
                self._next()
                return ir.ThrowStmt(self._parse_value())
            if tok.text == "nop":
                self._next()
                return ir.NopStmt()
            if tok.text == "switch":
                return self._parse_switch()
            if tok.text in ir.InvokeKind.ALL and self._is_invoke_ahead():
                return ir.InvokeStmt(self._parse_invoke())
            if tok.text == "static":
                ref = self._parse_ref()
                self._expect("op", "=")
                return ir.AssignStmt(ref, self._parse_rhs())
        # identity or assignment starting with a ref
        if tok.kind == "name" and self._peek(1).kind == "assign_id":
            local = ir.Local(self._next().text)
            self._next()
            at = self._expect("atref")
            if at.text == "@this":
                return ir.IdentityStmt(local, ir.ThisRef())
            index = int(at.text[len("@param-") :])
            return ir.IdentityStmt(local, ir.ParamRef(index))
        ref = self._parse_ref()
        self._expect("op", "=")
        return ir.AssignStmt(ref, self._parse_rhs())

    def _parse_switch(self) -> ir.SwitchStmt:
        self._expect("kw", "switch")
        key = self._parse_value()
        self._expect("op", "{")
        cases: List[Tuple[int, str]] = []
        default: Optional[str] = None
        while not self._accept("op", "}"):
            if self._accept("kw", "case"):
                value = int(self._expect("int").text)
                self._expect("op", ":")
                self._expect("kw", "goto")
                cases.append((value, self._qname()))
            elif self._accept("kw", "default"):
                self._expect("op", ":")
                self._expect("kw", "goto")
                default = self._qname()
            else:
                raise self._error("expected 'case' or 'default'")
            self._accept("op", ",")
        if default is None:
            raise self._error("switch requires a default arm")
        return ir.SwitchStmt(key, cases, default)

    # -- references and values -----------------------------------------------------

    def _parse_ref(self) -> ir.Value:
        if self._accept("kw", "static"):
            path = self._qname()
            class_name, _, field_name = path.rpartition(".")
            if not class_name:
                raise self._error("static reference needs Class.field")
            return ir.StaticFieldRef(class_name, field_name)
        tok = self._next()
        if tok.kind == "qname":
            parts = tok.text.split(".")
            if len(parts) != 2:
                raise JasmSyntaxError(
                    f"instance field access is base.field, got {tok.text!r} "
                    "(use 'static' for static fields)",
                    tok.line,
                    tok.column,
                )
            return ir.InstanceFieldRef(ir.Local(parts[0]), parts[1])
        if tok.kind != "name":
            raise JasmSyntaxError(
                f"expected a reference, got {tok.text!r}", tok.line, tok.column
            )
        base = ir.Local(tok.text)
        if self._peek().text == "[":
            self._next()
            index = self._parse_value()
            self._expect("op", "]")
            if not isinstance(index, (ir.Local, ir.IntConst)):
                raise self._error("array index must be a local or int")
            return ir.ArrayRef(base, index)
        return base

    def _parse_value(self) -> ir.Value:
        tok = self._peek()
        if tok.kind == "int":
            self._next()
            return ir.IntConst(int(tok.text))
        if tok.kind == "string":
            self._next()
            raw = tok.text[1:-1]
            return ir.StringConst(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if tok.kind == "kw" and tok.text == "null":
            self._next()
            return ir.NullConst()
        if tok.kind == "kw" and tok.text == "class":
            self._next()
            return ir.ClassConst(self._qname())
        if tok.kind == "kw" and tok.text == "static":
            return self._parse_ref()
        if tok.kind in ("name", "qname"):
            return self._parse_ref()
        raise JasmSyntaxError(
            f"expected a value, got {tok.text!r}", tok.line, tok.column
        )

    def _parse_rhs(self) -> ir.Value:
        tok = self._peek()
        if tok.kind == "kw" and tok.text == "new":
            self._next()
            return ir.NewExpr(self._qname())
        if tok.kind == "kw" and tok.text == "newarray":
            self._next()
            etype = self._type()
            self._expect("op", "[")
            size = self._parse_value()
            self._expect("op", "]")
            return ir.NewArrayExpr(etype, size)
        if tok.kind == "kw" and tok.text in ir.InvokeKind.ALL and self._is_invoke_ahead():
            return self._parse_invoke()
        if tok.text == "(":
            self._next()
            ttype = self._type()
            self._expect("op", ")")
            return ir.CastExpr(ttype, self._parse_value())
        value = self._parse_value()
        nxt = self._peek()
        if nxt.kind == "kw" and nxt.text == "instanceof":
            self._next()
            return ir.InstanceOfExpr(value, self._type())
        if nxt.kind == "op" and nxt.text in (
            "+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&", "|", "^",
        ):
            self._next()
            right = self._parse_value()
            return ir.BinOpExpr(nxt.text, value, right)
        return value

    def _is_invoke_ahead(self) -> bool:
        """Disambiguate ``static C.m(...)`` (invoke) from ``static C.f``
        (field reference): an invoke has ``(`` after its target path."""
        offset = 1
        if self._peek(offset).kind == "name":  # receiver local
            offset += 1
        if self._peek(offset).kind != "qname":
            return False
        after = self._peek(offset + 1)
        return after.kind == "op" and after.text == "("

    def _parse_invoke(self) -> ir.InvokeExpr:
        kind_tok = self._next()
        kind = kind_tok.text
        base: Optional[ir.Value] = None
        if kind != ir.InvokeKind.STATIC:
            tok = self._expect("name")
            base = ir.Local(tok.text)
        path_tok = self._next()
        if path_tok.kind != "qname":
            raise JasmSyntaxError(
                f"expected Class.method path, got {path_tok.text!r}",
                path_tok.line,
                path_tok.column,
            )
        class_name, _, method_name = path_tok.text.rpartition(".")
        if not class_name:
            raise self._error("invoke target needs Class.method")
        self._expect("op", "(")
        args: List[ir.Value] = []
        if not self._accept("op", ")"):
            while True:
                args.append(self._parse_value())
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        return ir.InvokeExpr(kind, base, class_name, method_name, args)


# ---------------------------------------------------------------------------
# Printer
# ---------------------------------------------------------------------------


def _fmt_value(v: ir.Value) -> str:
    if isinstance(v, ir.StaticFieldRef):
        return f"static {v.class_name}.{v.field_name}"
    if isinstance(v, ir.InstanceFieldRef):
        return f"{v.base.name}.{v.field_name}"
    if isinstance(v, ir.ArrayRef):
        return f"{v.base.name}[{_fmt_value(v.index)}]"
    if isinstance(v, ir.InvokeExpr):
        args = ", ".join(_fmt_value(a) for a in v.args)
        target = f"{v.class_name}.{v.method_name}"
        if v.base is None:
            return f"{v.kind} {target}({args})"
        base = "this" if isinstance(v.base, ir.ThisRef) else _fmt_value(v.base)
        return f"{v.kind} {base} {target}({args})"
    if isinstance(v, ir.NewExpr):
        return f"new {v.class_name}"
    if isinstance(v, ir.NewArrayExpr):
        return f"newarray {v.element_type.name}[{_fmt_value(v.size)}]"
    if isinstance(v, ir.CastExpr):
        return f"({v.target_type.name}) {_fmt_value(v.op)}"
    if isinstance(v, ir.InstanceOfExpr):
        return f"{_fmt_value(v.op)} instanceof {v.check_type.name}"
    if isinstance(v, ir.BinOpExpr):
        return f"{_fmt_value(v.left)} {v.op} {_fmt_value(v.right)}"
    return str(v)


def _fmt_statement(stmt: ir.Statement) -> str:
    prefix = f"{stmt.label}: " if stmt.label else ""
    if isinstance(stmt, ir.IdentityStmt):
        return f"{prefix}{stmt.local.name} := {stmt.ref}"
    if isinstance(stmt, ir.AssignStmt):
        return f"{prefix}{_fmt_value(stmt.target)} = {_fmt_value(stmt.rhs)}"
    if isinstance(stmt, ir.InvokeStmt):
        return f"{prefix}{_fmt_value(stmt.expr)}"
    if isinstance(stmt, ir.ReturnStmt):
        if stmt.value is None:
            return f"{prefix}return"
        return f"{prefix}return {_fmt_value(stmt.value)}"
    if isinstance(stmt, ir.IfStmt):
        return f"{prefix}if {_fmt_value(stmt.cond)} goto {stmt.target}"
    if isinstance(stmt, ir.GotoStmt):
        return f"{prefix}goto {stmt.target}"
    if isinstance(stmt, ir.SwitchStmt):
        arms = " ".join(f"case {v}: goto {l}," for v, l in stmt.cases)
        return (
            f"{prefix}switch {_fmt_value(stmt.key)} "
            f"{{ {arms} default: goto {stmt.default} }}"
        )
    if isinstance(stmt, ir.ThrowStmt):
        return f"{prefix}throw {_fmt_value(stmt.value)}"
    if isinstance(stmt, ir.NopStmt):
        return f"{prefix}nop"
    raise JasmSyntaxError(f"cannot print statement {stmt!r}")


def dump_class(cls: JavaClass) -> str:
    """Serialise one class to jasm text."""
    lines: List[str] = []
    kind = "interface" if cls.is_interface else "class"
    header = f"{kind} {cls.name}"
    if cls.super_name and cls.super_name != "java.lang.Object":
        header += f" extends {cls.super_name}"
    if cls.interface_names:
        header += " implements " + ", ".join(cls.interface_names)
    lines.append(header + " {")
    if cls.lint_suppressions:
        lines.append(f"  # lint: ignore[{', '.join(sorted(cls.lint_suppressions))}]")
    for field in cls.fields.values():
        mods = " ".join(
            n
            for n in field.modifiers.names()
            if n in _MODIFIER_NAMES and n != "public"
        )
        mods = (mods + " ") if mods else ""
        lines.append(f"  field {mods}{field.type.name} {field.name};")
    for method in cls.methods.values():
        mods = " ".join(
            n
            for n in method.modifiers.names()
            if n in _MODIFIER_NAMES and n != "public"
        )
        mods = (mods + " ") if mods else ""
        params = ", ".join(
            f"{t.name} {n}" for t, n in zip(method.param_types, method.param_names)
        )
        sig = f"  method {mods}{method.return_type.name} {method.name}({params})"
        if not method.has_body:
            lines.append(sig + ";")
            continue
        lines.append(sig + " {")
        if method.lint_suppressions:
            lines.append(
                f"    # lint: ignore[{', '.join(sorted(method.lint_suppressions))}]"
            )
        for stmt in method.body:
            lines.append(f"    {_fmt_statement(stmt)};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def dumps(classes: Sequence[JavaClass]) -> str:
    """Serialise classes to a single jasm document."""
    return "\n".join(dump_class(c) for c in classes)


def loads(source: str) -> List[JavaClass]:
    """Parse jasm text into classes."""
    return Parser(source).parse_program()

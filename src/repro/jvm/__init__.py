"""Java program model substrate (the Soot replacement).

Public surface:

* :mod:`repro.jvm.types` — Java type system
* :mod:`repro.jvm.model` — classes, methods, fields, signatures
* :mod:`repro.jvm.ir` — Jimple-like three-address IR
* :mod:`repro.jvm.builder` — fluent authoring DSL
* :mod:`repro.jvm.cfg` — per-method control-flow graphs
* :mod:`repro.jvm.dataflow` — lattice-based worklist dataflow engine
* :mod:`repro.jvm.hierarchy` — class-hierarchy analysis
* :mod:`repro.jvm.jasm` — textual IR (parser/printer)
* :mod:`repro.jvm.jar` — jar archives of jasm classes
* :mod:`repro.jvm.validate` — Soot-style body/linkage validation
"""

from repro.jvm.builder import ClassBuilder, MethodBuilder, ProgramBuilder
from repro.jvm.cfg import ControlFlowGraph, build_cfg
from repro.jvm.dataflow import (
    ConstantPropagation,
    DataflowAnalysis,
    DataflowResult,
    Liveness,
    Nullness,
    ReachingDefinitions,
    constant_static_fields,
    run_analysis,
)
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.jar import JarArchive, load_classpath, read_jar, write_jar
from repro.jvm.validate import ValidationIssue, validate_classes
from repro.jvm.model import (
    EXTERNALIZABLE,
    SERIALIZABLE,
    JavaClass,
    JavaField,
    JavaMethod,
    MethodSignature,
    Modifier,
)

__all__ = [
    "ProgramBuilder",
    "ClassBuilder",
    "MethodBuilder",
    "ControlFlowGraph",
    "build_cfg",
    "DataflowAnalysis",
    "DataflowResult",
    "run_analysis",
    "ReachingDefinitions",
    "Liveness",
    "Nullness",
    "ConstantPropagation",
    "constant_static_fields",
    "ClassHierarchy",
    "JarArchive",
    "read_jar",
    "write_jar",
    "load_classpath",
    "JavaClass",
    "JavaMethod",
    "JavaField",
    "MethodSignature",
    "Modifier",
    "validate_classes",
    "ValidationIssue",
    "SERIALIZABLE",
    "EXTERNALIZABLE",
]

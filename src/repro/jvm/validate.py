"""Program validation — Soot-style body and linkage checks.

`validate_classes` inspects a class set the way Soot validates Jimple
bodies before analysis, reporting :class:`ValidationIssue` records
rather than raising, so callers can decide between strict loading
(``tabby analyze`` on untrusted jars) and best-effort analysis.

Checks:

* **body shape** — identity statements appear only in the prologue,
  cover exactly the receiver and each parameter once, and every
  non-void method returns on every fall-through path end;
* **branch targets** — every ``goto``/``if``/``switch`` label resolves
  within the body, with no duplicate labels;
* **call sites** — when an invocation's declared class is defined, a
  matching method (name + arity) must be resolvable through the
  hierarchy; arity mismatches against a resolved method are flagged;
* **field access** — instance/static field references into *defined*
  classes must name a declared field (phantom classes are exempt,
  like Soot's phantom refs);
* **hierarchy sanity** — no inheritance cycles, interfaces are not
  used as superclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.jvm import ir
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import JavaClass, JavaMethod

__all__ = ["ValidationIssue", "validate_classes"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a class set."""

    severity: str  # "error" | "warning"
    class_name: str
    method_name: str
    message: str

    def __str__(self) -> str:
        where = self.class_name
        if self.method_name:
            where += f".{self.method_name}"
        return f"[{self.severity}] {where}: {self.message}"


def validate_classes(classes: Sequence[JavaClass]) -> List[ValidationIssue]:
    """Validate a class set; returns all issues found (empty = clean)."""
    issues: List[ValidationIssue] = []
    hierarchy = ClassHierarchy(classes)

    issues.extend(_check_hierarchy(hierarchy))
    for cls in classes:
        for method in cls.methods.values():
            if method.has_body:
                issues.extend(_check_body(cls, method, hierarchy))
    return issues


# ---------------------------------------------------------------------------
# hierarchy checks
# ---------------------------------------------------------------------------


def _check_hierarchy(hierarchy: ClassHierarchy) -> List[ValidationIssue]:
    issues: List[ValidationIssue] = []
    for cls in hierarchy.classes:
        if cls.super_name and cls.name in hierarchy.supertypes(cls.name):
            issues.append(
                ValidationIssue(
                    "error", cls.name, "", "class participates in an inheritance cycle"
                )
            )
        if cls.super_name:
            parent = hierarchy.get(cls.super_name)
            if parent is not None and parent.is_interface:
                issues.append(
                    ValidationIssue(
                        "error",
                        cls.name,
                        "",
                        f"extends the interface {cls.super_name} "
                        "(must use implements)",
                    )
                )
        for iface_name in cls.interface_names:
            iface = hierarchy.get(iface_name)
            if iface is not None and not iface.is_interface:
                issues.append(
                    ValidationIssue(
                        "error",
                        cls.name,
                        "",
                        f"implements the class {iface_name} (not an interface)",
                    )
                )
    return issues


# ---------------------------------------------------------------------------
# body checks
# ---------------------------------------------------------------------------


def _check_body(
    cls: JavaClass, method: JavaMethod, hierarchy: ClassHierarchy
) -> List[ValidationIssue]:
    issues: List[ValidationIssue] = []

    def issue(severity: str, message: str) -> None:
        issues.append(ValidationIssue(severity, cls.name, method.name, message))

    body = method.body
    labels: Set[str] = set()
    for stmt in body:
        if stmt.label is not None:
            if stmt.label in labels:
                issue("error", f"duplicate label {stmt.label!r}")
            labels.add(stmt.label)

    # prologue identities
    prologue = True
    seen_this = False
    seen_params: Set[int] = set()
    for stmt in body:
        if isinstance(stmt, ir.IdentityStmt):
            if not prologue:
                issue("error", "identity statement outside the prologue")
            if isinstance(stmt.ref, ir.ThisRef):
                if method.is_static:
                    issue("error", "@this in a static method")
                if seen_this:
                    issue("error", "duplicate @this binding")
                seen_this = True
            else:
                index = stmt.ref.index
                if index > method.arity:
                    issue("error", f"@param-{index} exceeds arity {method.arity}")
                if index in seen_params:
                    issue("error", f"duplicate @param-{index} binding")
                seen_params.add(index)
        else:
            prologue = False
    if not method.is_static and not seen_this:
        issue("warning", "receiver never bound (@this missing)")
    missing = set(range(1, method.arity + 1)) - seen_params
    if missing:
        issue("warning", f"parameters never bound: {sorted(missing)}")

    # control flow
    for stmt in body:
        for target in stmt.branch_targets():
            if target not in labels:
                issue("error", f"branch to undefined label {target!r}")
    if body and body[-1].falls_through:
        issue("error", "body may fall off the end without returning")

    # call sites and field refs
    for stmt in body:
        invoke = stmt.invoke_expr()
        if invoke is not None and invoke.kind != ir.InvokeKind.DYNAMIC:
            declared = hierarchy.get(invoke.class_name)
            if declared is not None:
                resolved = hierarchy.resolve_method(
                    invoke.class_name, invoke.method_name, invoke.arity
                )
                if resolved is None:
                    wrong_arity = _resolve_any_arity(
                        hierarchy, invoke.class_name, invoke.method_name
                    )
                    if wrong_arity is not None:
                        issue(
                            "error",
                            f"call to {invoke.class_name}.{invoke.method_name} "
                            f"with {invoke.arity} argument(s) does not match any "
                            "overload",
                        )
                    else:
                        issue(
                            "warning",
                            f"call target {invoke.class_name}."
                            f"{invoke.method_name}/{invoke.arity} not found in the "
                            "defined hierarchy",
                        )
        if isinstance(stmt, ir.AssignStmt):
            for value in (stmt.target, stmt.rhs):
                if isinstance(value, ir.StaticFieldRef):
                    owner = hierarchy.get(value.class_name)
                    if owner is not None and _find_field(
                        hierarchy, value.class_name, value.field_name
                    ) is None:
                        issue(
                            "warning",
                            f"static field {value.class_name}.{value.field_name} "
                            "not declared",
                        )
    return issues


def _resolve_any_arity(
    hierarchy: ClassHierarchy, class_name: str, method_name: str
) -> Optional[JavaMethod]:
    """A method of that name with *some* arity, up the hierarchy."""
    for name in (class_name,) + hierarchy.supertypes(class_name):
        cls = hierarchy.get(name)
        if cls is not None:
            found = cls.find_method(method_name)
            if found is not None:
                return found
    return None


def _find_field(hierarchy: ClassHierarchy, class_name: str, field_name: str):
    cls = hierarchy.get(class_name)
    if cls is not None and cls.field(field_name) is not None:
        return cls.field(field_name)
    for super_name in hierarchy.supertypes(class_name):
        parent = hierarchy.get(super_name)
        if parent is not None and parent.field(field_name) is not None:
            return parent.field(field_name)
    return None

"""Class hierarchy analysis.

Resolves the class name graph (superclasses, interfaces) over a set of
:class:`~repro.jvm.model.JavaClass`, and answers the questions Tabby's
CPG construction needs:

* subclass / subtype queries and transitive closures,
* virtual method resolution (JVM-style lookup up the superclass chain),
* *alias candidates* — for a method ``m`` of class ``c``, the methods of
  ``c``'s superclass or interfaces that ``m`` may stand in for
  (Formula 1 in the paper: same name and parameter count, with the Alias
  edge pointing from the subclass method to the superclass method),
* serializability (transitive implementation of ``java.io.Serializable``
  or ``java.io.Externalizable``).

Classes referenced but not defined (e.g. a corpus slice that mentions a
JDK type we did not model) are treated as *phantom* classes, like Soot's
phantom refs: they exist as hierarchy leaves with no methods.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import HierarchyError
from repro.jvm.model import (
    EXTERNALIZABLE,
    SERIALIZABLE,
    JavaClass,
    JavaMethod,
)

__all__ = ["ClassHierarchy"]


class ClassHierarchy:
    """Immutable view over a set of classes with resolution caches."""

    def __init__(self, classes: Iterable[JavaClass]):
        self._classes: Dict[str, JavaClass] = {}
        for cls in classes:
            if cls.name in self._classes:
                raise HierarchyError(f"duplicate class in hierarchy: {cls.name}")
            self._classes[cls.name] = cls
        self._phantoms: Set[str] = set()
        self._direct_subclasses: Dict[str, List[str]] = {}
        self._direct_implementers: Dict[str, List[str]] = {}
        self._supers_cache: Dict[str, Tuple[str, ...]] = {}
        self._serializable_cache: Dict[str, bool] = {}
        self._index_edges()

    # -- construction -----------------------------------------------------

    def _index_edges(self) -> None:
        for cls in self._classes.values():
            if cls.super_name:
                self._direct_subclasses.setdefault(cls.super_name, []).append(cls.name)
                self._note_phantom(cls.super_name)
            for iface in cls.interface_names:
                self._direct_implementers.setdefault(iface, []).append(cls.name)
                self._note_phantom(iface)

    def _note_phantom(self, name: str) -> None:
        if name not in self._classes:
            self._phantoms.add(name)

    # -- lookup -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    @property
    def classes(self) -> List[JavaClass]:
        return list(self._classes.values())

    @property
    def phantom_names(self) -> Set[str]:
        """Names referenced in extends/implements but never defined."""
        return set(self._phantoms)

    def get(self, name: str) -> Optional[JavaClass]:
        return self._classes.get(name)

    def require(self, name: str) -> JavaClass:
        cls = self._classes.get(name)
        if cls is None:
            raise HierarchyError(f"class not found: {name}")
        return cls

    # -- supertype queries ----------------------------------------------------

    def supertypes(self, name: str) -> Tuple[str, ...]:
        """All transitive supertypes (superclasses and interfaces) of
        ``name``, excluding itself, in BFS order.  Phantom supertypes are
        included by name."""
        cached = self._supers_cache.get(name)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        order: List[str] = []
        frontier = [name]
        while frontier:
            current = frontier.pop(0)
            cls = self._classes.get(current)
            parents: List[str] = []
            if cls is not None:
                if cls.super_name:
                    parents.append(cls.super_name)
                parents.extend(cls.interface_names)
            for parent in parents:
                if parent not in seen:
                    seen.add(parent)
                    order.append(parent)
                    frontier.append(parent)
        result = tuple(order)
        self._supers_cache[name] = result
        return result

    def is_subtype_of(self, name: str, super_name: str) -> bool:
        """Whether ``name`` is ``super_name`` or a transitive subtype."""
        if name == super_name:
            return True
        if super_name == "java.lang.Object":
            return True
        return super_name in self.supertypes(name)

    def direct_subtypes(self, name: str) -> List[str]:
        out = list(self._direct_subclasses.get(name, ()))
        out.extend(self._direct_implementers.get(name, ()))
        return out

    def subtypes(self, name: str) -> List[str]:
        """All transitive subtypes of ``name`` (excluding itself)."""
        seen: Set[str] = set()
        order: List[str] = []
        frontier = [name]
        while frontier:
            current = frontier.pop(0)
            for sub in self.direct_subtypes(current):
                if sub not in seen:
                    seen.add(sub)
                    order.append(sub)
                    frontier.append(sub)
        return order

    # -- serializability ----------------------------------------------------------

    def is_serializable(self, name: str) -> bool:
        """Transitively implements Serializable or Externalizable."""
        cached = self._serializable_cache.get(name)
        if cached is not None:
            return cached
        result = False
        if name in (SERIALIZABLE, EXTERNALIZABLE):
            result = True
        else:
            cls = self._classes.get(name)
            if cls is not None:
                if cls.declares_serializable:
                    result = True
                else:
                    for parent in self.supertypes(name):
                        if parent in (SERIALIZABLE, EXTERNALIZABLE):
                            result = True
                            break
        self._serializable_cache[name] = result
        return result

    # -- method resolution ---------------------------------------------------------

    def resolve_method(
        self, class_name: str, method_name: str, arity: int
    ) -> Optional[JavaMethod]:
        """JVM-style lookup: search ``class_name`` then its superclass
        chain and interfaces for a method with the given name/arity."""
        cls = self._classes.get(class_name)
        if cls is not None:
            found = cls.find_method(method_name, arity)
            if found is not None:
                return found
        for parent in self.supertypes(class_name):
            pcls = self._classes.get(parent)
            if pcls is None:
                continue
            found = pcls.find_method(method_name, arity)
            if found is not None:
                return found
        return None

    def dispatch_targets(
        self, class_name: str, method_name: str, arity: int
    ) -> List[JavaMethod]:
        """Possible concrete targets of a virtual call on a receiver whose
        *declared* type is ``class_name``: the statically resolved method
        plus every override in subtypes.  Used by baselines that build a
        call graph by CHA rather than via alias edges."""
        out: List[JavaMethod] = []
        resolved = self.resolve_method(class_name, method_name, arity)
        if resolved is not None:
            out.append(resolved)
        for sub in self.subtypes(class_name):
            cls = self._classes.get(sub)
            if cls is None:
                continue
            found = cls.find_method(method_name, arity)
            if found is not None and found not in out:
                out.append(found)
        return out

    # -- alias candidates (Formula 1) -------------------------------------------------

    def alias_parents(self, method: JavaMethod) -> List[JavaMethod]:
        """Methods in direct/transitive supertypes that ``method`` can
        replace under polymorphism: same name and parameter count
        (Formula 1).  The Alias edge runs ``method -> parent_method``."""
        owner = method.owner
        if owner is None:
            raise HierarchyError(f"method {method.name} has no owner class")
        out: List[JavaMethod] = []
        for parent_name in self.supertypes(owner.name):
            parent = self._classes.get(parent_name)
            if parent is None:
                continue
            candidate = parent.find_method(method.name, method.arity)
            if candidate is not None and candidate is not method:
                out.append(candidate)
        return out

    def overriding_methods(self, method: JavaMethod) -> List[JavaMethod]:
        """Inverse of :meth:`alias_parents`: methods in subtypes that may
        stand in for ``method`` at a call site."""
        owner = method.owner
        if owner is None:
            raise HierarchyError(f"method {method.name} has no owner class")
        out: List[JavaMethod] = []
        for sub_name in self.subtypes(owner.name):
            sub = self._classes.get(sub_name)
            if sub is None:
                continue
            candidate = sub.find_method(method.name, method.arity)
            if candidate is not None:
                out.append(candidate)
        return out

    # -- iteration helpers ---------------------------------------------------------

    def all_methods(self) -> List[JavaMethod]:
        out: List[JavaMethod] = []
        for cls in self._classes.values():
            out.extend(cls.methods.values())
        return out

    def methods_matching(self, class_name: str, method_name: str, arity: Optional[int] = None) -> List[JavaMethod]:
        cls = self._classes.get(class_name)
        if cls is None:
            return []
        return [
            m
            for m in cls.methods_named(method_name)
            if arity is None or m.arity == arity
        ]

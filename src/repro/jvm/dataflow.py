"""Generic lattice-based dataflow over per-method control-flow graphs.

The controllability analysis (:mod:`repro.core.controllability`,
Algorithm 1) is a bespoke single-purpose pass.  This module is the
general substrate next to it: a classic forward/backward worklist
engine over :class:`repro.jvm.cfg.ControlFlowGraph` with per-statement
transfer functions, a join operator, and deterministic fixpoint
iteration in reverse-post-order (forward) or post-order (backward).

Four concrete analyses ship with the engine:

* :class:`ReachingDefinitions` — which (local, site) definitions reach
  each program point (forward, may, union join);
* :class:`Liveness` — which locals are live at each point (backward,
  may, union join);
* :class:`Nullness` — combined definite-assignment + nullness facts per
  local (forward, must on assignment, may on nullness);
* :class:`ConstantPropagation` — sparse conditional constant
  propagation: per-local constant lattice *plus* branch feasibility.
  The engine only propagates along edges the analysis declares
  feasible (:meth:`DataflowAnalysis.feasible_successors`), so blocks
  guarded by statically-false conditions stay unreached — the fact the
  lint guard rules and the opt-in ``--refine-guards`` chain refinement
  are built on.

Backward analyses and the missing-exit blind spot
-------------------------------------------------

``ControlFlowGraph.exit_blocks`` is empty for a method that ends in an
infinite ``goto`` loop (no block lacks successors).  A backward engine
seeded only from exit blocks would never visit such a method at all.
This engine therefore adopts a *virtual exit* convention: every block
is seeded into the backward worklist (in post-order), and the boundary
state is applied to blocks without successors when there are any.
Blocks inside an infinite loop start from the analysis bottom and rise
to the fixpoint, so liveness over ``while(true)`` bodies terminates
with correct facts.  See ``tests/jvm/test_dataflow.py`` for the
regression test.

Determinism
-----------

Fact maps are a pure function of the method body: the worklist is a
priority queue ordered by (iteration-order position, block index),
joins fold predecessor/successor contributions in CFG construction
order, and no iteration touches unordered containers.  Two runs over
the same method produce identical results (asserted by tests).
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.jvm import ir
from repro.jvm.cfg import BasicBlock, ControlFlowGraph
from repro.jvm.model import JavaClass

__all__ = [
    "FORWARD",
    "BACKWARD",
    "DataflowAnalysis",
    "DataflowResult",
    "run_analysis",
    "statement_def",
    "statement_uses",
    "ReachingDefinitions",
    "Liveness",
    "Nullness",
    "NullnessFact",
    "ConstantPropagation",
    "NONCONST",
    "const_int",
    "const_str",
    "const_null",
    "constant_static_fields",
]

FORWARD = "forward"
BACKWARD = "backward"


# ---------------------------------------------------------------------------
# Statement use/def helpers (shared by liveness, lint, nullness)
# ---------------------------------------------------------------------------


def statement_def(stmt: ir.Statement) -> Optional[str]:
    """Name of the local defined by ``stmt``, if any."""
    if isinstance(stmt, ir.IdentityStmt):
        return stmt.local.name
    if isinstance(stmt, ir.AssignStmt) and isinstance(stmt.target, ir.Local):
        return stmt.target.name
    return None


def statement_uses(stmt: ir.Statement) -> Tuple[str, ...]:
    """Names of the locals read by ``stmt``, in evaluation order."""
    used: List[ir.Local] = []
    if isinstance(stmt, ir.AssignStmt):
        if not isinstance(stmt.target, ir.Local):
            used.extend(stmt.target.locals_used())
        used.extend(stmt.rhs.locals_used())
    elif isinstance(stmt, ir.InvokeStmt):
        used.extend(stmt.expr.locals_used())
    elif isinstance(stmt, ir.ReturnStmt):
        if stmt.value is not None:
            used.extend(stmt.value.locals_used())
    elif isinstance(stmt, ir.IfStmt):
        used.extend(stmt.cond.locals_used())
    elif isinstance(stmt, ir.SwitchStmt):
        used.extend(stmt.key.locals_used())
    elif isinstance(stmt, ir.ThrowStmt):
        used.extend(stmt.value.locals_used())
    # IdentityStmt, GotoStmt, NopStmt read no locals.
    return tuple(local.name for local in used)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class DataflowAnalysis:
    """Base class of a dataflow analysis.

    Subclasses set :attr:`direction` and implement the lattice hooks.
    States must be treated as immutable: :meth:`transfer` returns a new
    state and never mutates its argument.
    """

    direction = FORWARD

    def prepare(self, cfg: ControlFlowGraph) -> None:
        """Called once before the fixpoint loop; build per-CFG indexes."""

    def bottom(self, cfg: ControlFlowGraph) -> Any:
        """The lattice bottom — the state of a not-yet-reached block."""
        raise NotImplementedError

    def boundary(self, cfg: ControlFlowGraph) -> Any:
        """State at the method entry (forward) or exits (backward)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, stmt: ir.Statement, state: Any) -> Any:
        """Flow ``state`` across one statement.

        Forward: ``state`` holds *before* the statement, the result
        holds *after*.  Backward: ``state`` holds *after* (in program
        order), the result holds *before*.
        """
        raise NotImplementedError

    def feasible_successors(
        self, block: BasicBlock, out_state: Any
    ) -> List[BasicBlock]:
        """Successors reachable from ``block`` given its out-state.

        Forward-only hook; the default declares every CFG edge
        feasible.  Implementations must be monotone: an edge declared
        feasible for some state stays feasible for any higher state.
        """
        return list(block.successors)


class DataflowResult:
    """Fixpoint facts for one method.

    ``block_in``/``block_out`` map block index to the state at block
    entry/exit *in program order* for both directions (for a backward
    analysis ``block_out`` is the join over successor entry states).
    ``reached`` holds the indexes of blocks the fixpoint visited; for a
    conditional analysis, blocks missing from it are statically
    infeasible (or CFG-unreachable).
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        analysis: DataflowAnalysis,
        block_in: Dict[int, Any],
        block_out: Dict[int, Any],
        reached: FrozenSet[int],
    ):
        self.cfg = cfg
        self.analysis = analysis
        self.block_in = block_in
        self.block_out = block_out
        self.reached = reached

    def statement_states(
        self, block: BasicBlock
    ) -> List[Tuple[ir.Statement, Any, Any]]:
        """Per-statement ``(stmt, state_before, state_after)`` triples.

        Both states are in program order regardless of direction: for a
        backward analysis ``state_after`` is the fact that flows *into*
        the statement from below.
        """
        analysis = self.analysis
        if analysis.direction == FORWARD:
            state = self.block_in[block.index]
            out: List[Tuple[ir.Statement, Any, Any]] = []
            for stmt in block.statements:
                after = analysis.transfer(stmt, state)
                out.append((stmt, state, after))
                state = after
            return out
        state = self.block_out[block.index]
        rev: List[Tuple[ir.Statement, Any, Any]] = []
        for stmt in reversed(block.statements):
            before = analysis.transfer(stmt, state)
            rev.append((stmt, before, state))
            state = before
        rev.reverse()
        return rev


def run_analysis(cfg: ControlFlowGraph, analysis: DataflowAnalysis) -> DataflowResult:
    """Run ``analysis`` to fixpoint over ``cfg``."""
    if not cfg.blocks:
        return DataflowResult(cfg, analysis, {}, {}, frozenset())
    analysis.prepare(cfg)
    if analysis.direction == FORWARD:
        return _run_forward(cfg, analysis)
    return _run_backward(cfg, analysis)


class _Worklist:
    """Priority worklist: pops the pending block earliest in ``order``."""

    def __init__(self, order: Sequence[BasicBlock]):
        self._priority = {b.index: i for i, b in enumerate(order)}
        self._heap: List[Tuple[int, int]] = []
        self._pending: Set[int] = set()

    def push(self, block: BasicBlock) -> None:
        if block.index not in self._pending:
            self._pending.add(block.index)
            heapq.heappush(self._heap, (self._priority[block.index], block.index))

    def pop(self) -> int:
        _, index = heapq.heappop(self._heap)
        self._pending.discard(index)
        return index

    def __bool__(self) -> bool:
        return bool(self._heap)


def _run_forward(cfg: ControlFlowGraph, analysis: DataflowAnalysis) -> DataflowResult:
    blocks = cfg.blocks
    bottom = analysis.bottom(cfg)
    block_in: Dict[int, Any] = {b.index: bottom for b in blocks}
    block_out: Dict[int, Any] = {b.index: bottom for b in blocks}
    # Feasible successor indexes discovered so far, per block.
    feasible: Dict[int, FrozenSet[int]] = {b.index: frozenset() for b in blocks}
    reached: Set[int] = set()

    worklist = _Worklist(cfg.reverse_post_order())
    entry = cfg.entry
    assert entry is not None
    worklist.push(entry)

    while worklist:
        index = worklist.pop()
        block = blocks[index]
        contributions: List[Any] = []
        if block is entry:
            contributions.append(analysis.boundary(cfg))
        for pred in block.predecessors:
            if pred.index in reached and index in feasible[pred.index]:
                contributions.append(block_out[pred.index])
        # Fold without seeding from bottom: for a must-analysis (e.g.
        # Nullness) bottom is not a join identity, and joining it in
        # would wrongly demote every incoming fact.
        if contributions:
            state = contributions[0]
            for contribution in contributions[1:]:
                state = analysis.join(state, contribution)
        else:
            state = bottom
        first_visit = index not in reached
        reached.add(index)
        block_in[index] = state
        for stmt in block.statements:
            state = analysis.transfer(stmt, state)
        new_feasible = frozenset(
            succ.index for succ in analysis.feasible_successors(block, state)
        )
        changed = (
            first_visit
            or state != block_out[index]
            or new_feasible != feasible[index]
        )
        block_out[index] = state
        feasible[index] = new_feasible
        if changed:
            for succ in block.successors:
                if succ.index in new_feasible:
                    worklist.push(succ)

    return DataflowResult(cfg, analysis, block_in, block_out, frozenset(reached))


def _run_backward(cfg: ControlFlowGraph, analysis: DataflowAnalysis) -> DataflowResult:
    blocks = cfg.blocks
    bottom = analysis.bottom(cfg)
    boundary = analysis.boundary(cfg)
    block_in: Dict[int, Any] = {b.index: bottom for b in blocks}
    block_out: Dict[int, Any] = {b.index: bottom for b in blocks}

    # Post-order seeding of *every* block implements the virtual-exit
    # convention: methods ending in an infinite goto loop have no
    # natural exit blocks, yet each block still gets (at least) one
    # visit and the loop rises from bottom to its fixpoint.
    order = list(reversed(cfg.reverse_post_order()))
    worklist = _Worklist(order)
    for block in order:
        worklist.push(block)

    visited: Set[int] = set()
    while worklist:
        index = worklist.pop()
        block = blocks[index]
        if block.successors:
            state = block_in[block.successors[0].index]
            for succ in block.successors[1:]:
                state = analysis.join(state, block_in[succ.index])
        else:
            state = boundary
        first_visit = index not in visited
        visited.add(index)
        block_out[index] = state
        for stmt in reversed(block.statements):
            state = analysis.transfer(stmt, state)
        changed = first_visit or state != block_in[index]
        block_in[index] = state
        if changed:
            for pred in block.predecessors:
                worklist.push(pred)

    return DataflowResult(
        cfg, analysis, block_in, block_out, frozenset(b.index for b in blocks)
    )


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


class ReachingDefinitions(DataflowAnalysis):
    """May-reach definition sites.

    A state is a frozenset of ``(local_name, block_index, offset)``
    triples — the definitions that may reach a program point.  Join is
    set union.
    """

    direction = FORWARD

    def prepare(self, cfg: ControlFlowGraph) -> None:
        self._site: Dict[int, Tuple[int, int]] = {}
        for block in cfg.blocks:
            for offset, stmt in enumerate(block.statements):
                self._site[id(stmt)] = (block.index, offset)

    def bottom(self, cfg: ControlFlowGraph) -> FrozenSet[Tuple[str, int, int]]:
        return frozenset()

    def boundary(self, cfg: ControlFlowGraph) -> FrozenSet[Tuple[str, int, int]]:
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, stmt, state):
        defined = statement_def(stmt)
        if defined is None:
            return state
        block_index, offset = self._site[id(stmt)]
        return frozenset(
            d for d in state if d[0] != defined
        ) | {(defined, block_index, offset)}


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


class Liveness(DataflowAnalysis):
    """Live locals (backward, union join).

    States are frozensets of local names live at a point.  Thanks to
    the virtual-exit convention the fixpoint also terminates on
    methods whose CFG has no exit blocks (infinite goto loop).
    """

    direction = BACKWARD

    def bottom(self, cfg: ControlFlowGraph) -> FrozenSet[str]:
        return frozenset()

    def boundary(self, cfg: ControlFlowGraph) -> FrozenSet[str]:
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, stmt, state):
        defined = statement_def(stmt)
        if defined is not None:
            state = state - {defined}
        uses = statement_uses(stmt)
        if uses:
            state = state | frozenset(uses)
        return state


# ---------------------------------------------------------------------------
# Nullness / definite assignment
# ---------------------------------------------------------------------------


class NullnessFact:
    """Per-local fact: definitely-assigned bit plus a nullness tag."""

    NULL = "null"
    NONNULL = "nonnull"
    MAYBE = "maybe"

    __slots__ = ("definite", "nullness")

    def __init__(self, definite: bool, nullness: str):
        self.definite = definite
        self.nullness = nullness

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NullnessFact)
            and other.definite == self.definite
            and other.nullness == self.nullness
        )

    def __hash__(self) -> int:
        return hash((self.definite, self.nullness))

    def __repr__(self) -> str:
        tag = "definite" if self.definite else "partial"
        return f"<NullnessFact {tag} {self.nullness}>"


class Nullness(DataflowAnalysis):
    """Definite assignment + nullness, per local.

    A state maps local name → :class:`NullnessFact`; a name missing
    from the state was assigned on *no* path to the point.  A fact with
    ``definite=False`` was assigned on some but not all paths — reading
    it is the ``use-before-init`` lint condition.
    """

    direction = FORWARD

    def bottom(self, cfg: ControlFlowGraph) -> Dict[str, NullnessFact]:
        return {}

    def boundary(self, cfg: ControlFlowGraph) -> Dict[str, NullnessFact]:
        return {}

    def join(self, a, b):
        out: Dict[str, NullnessFact] = {}
        for name in sorted(set(a) | set(b)):
            fa = a.get(name)
            fb = b.get(name)
            if fa is None or fb is None:
                present = fa if fa is not None else fb
                assert present is not None
                out[name] = NullnessFact(False, present.nullness)
            else:
                nullness = (
                    fa.nullness
                    if fa.nullness == fb.nullness
                    else NullnessFact.MAYBE
                )
                out[name] = NullnessFact(fa.definite and fb.definite, nullness)
        return out

    def _rhs_nullness(self, rhs: ir.Value, state: Dict[str, NullnessFact]) -> str:
        if isinstance(rhs, ir.NullConst):
            return NullnessFact.NULL
        if isinstance(
            rhs,
            (
                ir.NewExpr,
                ir.NewArrayExpr,
                ir.StringConst,
                ir.IntConst,
                ir.ClassConst,
                ir.BinOpExpr,
                ir.InstanceOfExpr,
            ),
        ):
            return NullnessFact.NONNULL
        if isinstance(rhs, ir.CastExpr):
            return self._rhs_nullness(rhs.op, state)
        if isinstance(rhs, ir.Local):
            fact = state.get(rhs.name)
            return fact.nullness if fact is not None else NullnessFact.MAYBE
        # Field/array loads, invokes, @this/@param: unknown.
        return NullnessFact.MAYBE

    def transfer(self, stmt, state):
        if isinstance(stmt, ir.IdentityStmt):
            nullness = (
                NullnessFact.NONNULL
                if isinstance(stmt.ref, ir.ThisRef)
                else NullnessFact.MAYBE
            )
            out = dict(state)
            out[stmt.local.name] = NullnessFact(True, nullness)
            return out
        if isinstance(stmt, ir.AssignStmt) and isinstance(stmt.target, ir.Local):
            out = dict(state)
            out[stmt.target.name] = NullnessFact(
                True, self._rhs_nullness(stmt.rhs, state)
            )
            return out
        return state


# ---------------------------------------------------------------------------
# Conditional constant propagation
# ---------------------------------------------------------------------------

class _NonConst:
    """Singleton lattice bottom for constant values."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "NONCONST"


NONCONST = _NonConst()

# Constant lattice values are ("int", v) / ("str", v) / ("null",) /
# ("class", name) tuples; the optimistic top (UNDEF) is represented by
# *absence* from the state map, so states only store facts.


def const_int(value: int) -> Tuple[str, int]:
    return ("int", int(value))


def const_str(value: str) -> Tuple[str, str]:
    return ("str", value)


def const_null() -> Tuple[str, ...]:
    return ("null",)


def _truthy(value: Any) -> Optional[bool]:
    """Truth of a constant used as a branch condition (int-like only)."""
    if isinstance(value, tuple) and value[0] == "int":
        return value[1] != 0
    return None


def _fold_binop(op: str, left: Any, right: Any) -> Any:
    """Fold a binary operator over two constant-lattice values.

    ``None`` operands mean UNDEF (optimistically unknown): the result
    stays UNDEF unless the other operand already forces NONCONST.
    """
    if left is NONCONST or right is NONCONST:
        return NONCONST
    if left is None or right is None:
        return None
    if op in ("==", "!="):
        comparable = (
            left[0] == right[0]
            or {left[0], right[0]} <= {"null", "str", "class"}
        )
        if not comparable:
            return NONCONST
        equal = left == right
        return const_int(1 if (equal if op == "==" else not equal) else 0)
    if left[0] != "int" or right[0] != "int":
        return NONCONST
    a, b = left[1], right[1]
    if op == "+":
        return const_int(a + b)
    if op == "-":
        return const_int(a - b)
    if op == "*":
        return const_int(a * b)
    if op == "/":
        if b == 0:
            return NONCONST
        return const_int(int(a / b))  # Java truncates toward zero
    if op == "%":
        if b == 0:
            return NONCONST
        return const_int(a - int(a / b) * b)
    if op == "<":
        return const_int(1 if a < b else 0)
    if op == "<=":
        return const_int(1 if a <= b else 0)
    if op == ">":
        return const_int(1 if a > b else 0)
    if op == ">=":
        return const_int(1 if a >= b else 0)
    if op == "&":
        return const_int(a & b)
    if op == "|":
        return const_int(a | b)
    if op == "^":
        return const_int(a ^ b)
    return NONCONST


def constant_static_fields(
    classes: Iterable[JavaClass],
) -> Dict[Tuple[str, str], Any]:
    """Static fields provably stuck at their JVM default value.

    A static field is *constant-default* iff its owning class has no
    static initializer and no statement in any analyzed body stores to
    it.  Such a field can only ever hold its default (0 for integral
    primitives, null for references) — the oracle behind the
    guard-feasibility rules.  Fields of classes with a ``<clinit>`` are
    excluded wholesale since the initializer may write them indirectly.
    """
    class_list = list(classes)
    candidates: Dict[Tuple[str, str], Any] = {}
    for cls in class_list:
        has_clinit = any(m.is_static_initializer for m in cls.methods.values())
        if has_clinit:
            continue
        for field in cls.fields.values():
            if not field.is_static:
                continue
            type_name = field.type.name
            if type_name in ("int", "boolean", "byte", "short", "char", "long"):
                candidates[(cls.name, field.name)] = const_int(0)
            elif type_name in ("float", "double"):
                continue  # no float constants in the IR; stay unknown
            else:
                candidates[(cls.name, field.name)] = const_null()
    if not candidates:
        return candidates
    for cls in class_list:
        for method in cls.methods.values():
            for stmt in method.body:
                if isinstance(stmt, ir.AssignStmt) and isinstance(
                    stmt.target, ir.StaticFieldRef
                ):
                    candidates.pop(
                        (stmt.target.class_name, stmt.target.field_name), None
                    )
    return candidates


class ConstantPropagation(DataflowAnalysis):
    """Sparse conditional constant propagation with branch feasibility.

    States map local name → constant value or :data:`NONCONST`; a
    missing name is optimistically unknown (UNDEF).  The
    :meth:`feasible_successors` hook folds branches whose condition (or
    switch key) evaluates to a constant, so the engine never propagates
    into statically-dead arms; :attr:`branch_verdicts` records an
    ``always-true``/``always-false`` verdict per folded ``if`` block.

    ``static_oracle`` maps ``(class_name, field_name)`` to the constant
    value of provably never-written static fields (see
    :func:`constant_static_fields`); without an oracle, static loads
    are NONCONST.
    """

    direction = FORWARD

    def __init__(self, static_oracle: Optional[Dict[Tuple[str, str], Any]] = None):
        self.static_oracle = static_oracle or {}
        #: block index of a folded IfStmt -> "always-true"/"always-false"
        self.branch_verdicts: Dict[int, str] = {}

    def prepare(self, cfg: ControlFlowGraph) -> None:
        self.branch_verdicts = {}
        self._label_block: Dict[str, BasicBlock] = {}
        for block in cfg.blocks:
            for stmt in block.statements:
                if stmt.label is not None:
                    self._label_block[stmt.label] = block
        self._cfg = cfg

    def bottom(self, cfg: ControlFlowGraph) -> Dict[str, Any]:
        return {}

    def boundary(self, cfg: ControlFlowGraph) -> Dict[str, Any]:
        return {}

    def join(self, a, b):
        out: Dict[str, Any] = {}
        for name in sorted(set(a) | set(b)):
            va = a.get(name)
            vb = b.get(name)
            if va is None:
                out[name] = vb
            elif vb is None:
                out[name] = va
            elif va == vb:
                out[name] = va
            else:
                out[name] = NONCONST
        return out

    def eval_value(self, value: ir.Value, state: Dict[str, Any]) -> Any:
        """Constant-lattice value of ``value`` in ``state``.

        Returns a constant tuple, :data:`NONCONST`, or ``None`` for
        UNDEF (optimistically unknown).
        """
        if isinstance(value, ir.Local):
            return state.get(value.name)
        if isinstance(value, ir.IntConst):
            return const_int(value.value)
        if isinstance(value, ir.StringConst):
            return const_str(value.value)
        if isinstance(value, ir.NullConst):
            return const_null()
        if isinstance(value, ir.ClassConst):
            return ("class", value.class_name)
        if isinstance(value, ir.StaticFieldRef):
            key = (value.class_name, value.field_name)
            return self.static_oracle.get(key, NONCONST)
        if isinstance(value, ir.CastExpr):
            return self.eval_value(value.op, state)
        if isinstance(value, ir.BinOpExpr):
            return _fold_binop(
                value.op,
                self.eval_value(value.left, state),
                self.eval_value(value.right, state),
            )
        # Field/array loads, invokes, allocations, instanceof, @this/@param.
        return NONCONST

    def transfer(self, stmt, state):
        if isinstance(stmt, ir.IdentityStmt):
            out = dict(state)
            out[stmt.local.name] = NONCONST
            return out
        if isinstance(stmt, ir.AssignStmt) and isinstance(stmt.target, ir.Local):
            value = self.eval_value(stmt.rhs, state)
            out = dict(state)
            if value is None:
                out.pop(stmt.target.name, None)
            else:
                out[stmt.target.name] = value
            return out
        return state

    def feasible_successors(self, block, out_state):
        last = block.statements[-1] if block.statements else None
        if isinstance(last, ir.IfStmt):
            truth = _truthy(self.eval_value(last.cond, out_state))
            if truth is None:
                self.branch_verdicts.pop(block.index, None)
                return list(block.successors)
            target = self._label_block.get(last.target)
            fallthrough = (
                self._cfg.blocks[block.index + 1]
                if block.index + 1 < len(self._cfg.blocks)
                else None
            )
            if truth:
                self.branch_verdicts[block.index] = "always-true"
                return [target] if target is not None else []
            self.branch_verdicts[block.index] = "always-false"
            return [fallthrough] if fallthrough is not None else []
        if isinstance(last, ir.SwitchStmt):
            key = self.eval_value(last.key, out_state)
            if isinstance(key, tuple) and key[0] == "int":
                label = last.default
                for case_value, case_label in last.cases:
                    if case_value == key[1]:
                        label = case_label
                        break
                target = self._label_block.get(label)
                return [target] if target is not None else []
            return list(block.successors)
        return list(block.successors)

"""Fluent builder DSL for authoring Java classes in the IR.

The synthetic corpus (``repro.corpus``) and most tests author classes
with this DSL rather than writing raw IR statements.  It enforces the
three-address discipline automatically by materialising temporaries.

Example::

    pb = ProgramBuilder(jar="example.jar")
    with pb.cls("demo.EvilObjectB", implements=[SERIALIZABLE]) as c:
        c.field("val2", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            v = m.get_field(m.this, "val2")
            cmd = m.invoke(v, "java.lang.Object", "toString",
                           returns="java.lang.String")
            rt = m.invoke_static("java.lang.Runtime", "getRuntime",
                                 returns="java.lang.Runtime")
            m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
            m.ret(cmd)
    classes = pb.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ClassModelError, IRError
from repro.jvm import ir
from repro.jvm import types as jt
from repro.jvm.model import (
    EXTERNALIZABLE,
    SERIALIZABLE,
    JavaClass,
    JavaField,
    JavaMethod,
    Modifier,
)

__all__ = ["ProgramBuilder", "ClassBuilder", "MethodBuilder", "SERIALIZABLE", "EXTERNALIZABLE"]

TypeLike = Union[str, jt.JavaType]
ValueLike = Union[ir.Value, str, int, None]


def _as_type(t: TypeLike) -> jt.JavaType:
    if isinstance(t, jt.JavaType):
        return t
    return jt.type_from_name(t)


class MethodBuilder:
    """Builds one method body; obtained from :meth:`ClassBuilder.method`."""

    def __init__(self, method: JavaMethod):
        self._method = method
        self._stmts: List[ir.Statement] = []
        self._tmp_counter = 0
        self._pending_label: Optional[str] = None
        self._finished = False
        self.this: Optional[ir.Local] = None
        self._params: List[ir.Local] = []
        self._emit_identities()

    # -- plumbing ------------------------------------------------------------

    def _emit_identities(self) -> None:
        if not self._method.is_static:
            self.this = ir.Local("this")
            self._append(ir.IdentityStmt(self.this, ir.ThisRef()))
        for i, name in enumerate(self._method.param_names, start=1):
            local = ir.Local(name)
            self._params.append(local)
            self._append(ir.IdentityStmt(local, ir.ParamRef(i)))

    def _append(self, stmt: ir.Statement) -> ir.Statement:
        if self._finished:
            raise IRError("method builder already finished")
        if self._pending_label is not None:
            stmt.label = self._pending_label
            self._pending_label = None
        self._stmts.append(stmt)
        return stmt

    def _fresh(self, hint: str = "t") -> ir.Local:
        self._tmp_counter += 1
        return ir.Local(f"${hint}{self._tmp_counter}")

    def _as_value(self, v: ValueLike) -> ir.Value:
        if v is None:
            return ir.NullConst()
        if isinstance(v, ir.Value):
            return v
        if isinstance(v, bool):
            return ir.IntConst(int(v))
        if isinstance(v, int):
            return ir.IntConst(v)
        if isinstance(v, str):
            return ir.StringConst(v)
        raise IRError(f"cannot convert {v!r} to an IR value")

    def _simple(self, v: ValueLike, hint: str = "t") -> ir.Value:
        """Reduce to a simple value, spilling expressions into temporaries."""
        value = self._as_value(v)
        if isinstance(value, ir.Expr):
            tmp = self._fresh(hint)
            self._append(ir.AssignStmt(tmp, value))
            return tmp
        return value

    # -- accessors -------------------------------------------------------------

    def param(self, index: int) -> ir.Local:
        """The local bound to 1-based parameter ``index``."""
        if not 1 <= index <= len(self._params):
            raise IRError(
                f"{self._method.name}: parameter index {index} out of range"
            )
        return self._params[index - 1]

    def lint_ignore(self, *rules: str) -> "MethodBuilder":
        """Suppress the given lint rules for this method.

        Corpus decoys that *intend* a weird shape (e.g. a
        constant-false guard) use this instead of polluting the lint
        report; the jasm round-trip preserves it as a
        ``# lint: ignore[rule]`` pragma.
        """
        self._method.lint_suppressions.update(rules)
        return self

    # -- statement emitters ------------------------------------------------------

    def local(self, name: str) -> ir.Local:
        return ir.Local(name)

    def label(self, name: str) -> None:
        """Attach ``name`` as the label of the next emitted statement."""
        if self._pending_label is not None:
            self._append(ir.NopStmt())
        self._pending_label = name

    def assign(self, target: ir.Value, value: ValueLike) -> ir.Value:
        """``target = value``; returns ``target``."""
        rhs = self._as_value(value)
        if isinstance(target, (ir.InstanceFieldRef, ir.StaticFieldRef, ir.ArrayRef)):
            rhs = self._simple(rhs)
        self._append(ir.AssignStmt(target, rhs))
        return target

    def new(self, class_name: str, hint: str = "obj") -> ir.Local:
        """``tmp = new class_name``; returns the temporary."""
        tmp = self._fresh(hint)
        self._append(ir.AssignStmt(tmp, ir.NewExpr(class_name)))
        return tmp

    def new_array(self, element_type: TypeLike, size: ValueLike) -> ir.Local:
        tmp = self._fresh("arr")
        expr = ir.NewArrayExpr(_as_type(element_type), self._simple(size))
        self._append(ir.AssignStmt(tmp, expr))
        return tmp

    def get_field(self, base: ir.Value, field_name: str) -> ir.Local:
        """``tmp = base.field``; returns the temporary."""
        base_local = self._base_local(base)
        tmp = self._fresh(field_name)
        self._append(ir.AssignStmt(tmp, ir.InstanceFieldRef(base_local, field_name)))
        return tmp

    def set_field(self, base: ir.Value, field_name: str, value: ValueLike) -> None:
        """``base.field = value``."""
        base_local = self._base_local(base)
        rhs = self._simple(value)
        self._append(ir.AssignStmt(ir.InstanceFieldRef(base_local, field_name), rhs))

    def get_static(self, class_name: str, field_name: str) -> ir.Local:
        tmp = self._fresh(field_name)
        self._append(ir.AssignStmt(tmp, ir.StaticFieldRef(class_name, field_name)))
        return tmp

    def set_static(self, class_name: str, field_name: str, value: ValueLike) -> None:
        rhs = self._simple(value)
        self._append(ir.AssignStmt(ir.StaticFieldRef(class_name, field_name), rhs))

    def array_get(self, base: ir.Value, index: ValueLike) -> ir.Local:
        base_local = self._base_local(base)
        idx = self._simple(index)
        if not isinstance(idx, (ir.Local, ir.IntConst)):
            idx = self._simple(idx)
        tmp = self._fresh("elem")
        self._append(ir.AssignStmt(tmp, ir.ArrayRef(base_local, idx)))
        return tmp

    def array_set(self, base: ir.Value, index: ValueLike, value: ValueLike) -> None:
        base_local = self._base_local(base)
        idx = self._simple(index)
        rhs = self._simple(value)
        self._append(ir.AssignStmt(ir.ArrayRef(base_local, idx), rhs))

    def cast(self, value: ValueLike, target_type: TypeLike) -> ir.Local:
        tmp = self._fresh("cast")
        expr = ir.CastExpr(_as_type(target_type), self._simple(value))
        self._append(ir.AssignStmt(tmp, expr))
        return tmp

    def binop(self, op: str, left: ValueLike, right: ValueLike) -> ir.Local:
        tmp = self._fresh("cmp")
        expr = ir.BinOpExpr(op, self._simple(left), self._simple(right))
        self._append(ir.AssignStmt(tmp, expr))
        return tmp

    def _base_local(self, base: ir.Value) -> ir.Local:
        if isinstance(base, ir.ThisRef):
            if self.this is None:
                raise IRError("static method has no @this")
            return self.this
        if isinstance(base, ir.Local):
            return base
        spilled = self._simple(base)
        if isinstance(spilled, ir.Local):
            return spilled
        raise IRError(f"cannot use {base!r} as an access base")

    # -- invocations ---------------------------------------------------------

    def invoke(
        self,
        base: ir.Value,
        class_name: str,
        method_name: str,
        args: Sequence[ValueLike] = (),
        returns: Optional[TypeLike] = None,
        kind: str = ir.InvokeKind.VIRTUAL,
    ) -> Optional[ir.Local]:
        """``[tmp =] base.<class_name.method_name>(args)``.

        Returns the result temporary when ``returns`` is given, else None.
        """
        base_local = self._base_local(base)
        simple_args = [self._simple(a, "arg") for a in args]
        expr = ir.InvokeExpr(kind, base_local, class_name, method_name, simple_args)
        return self._finish_invoke(expr, returns)

    def invoke_special(
        self,
        base: ir.Value,
        class_name: str,
        method_name: str,
        args: Sequence[ValueLike] = (),
        returns: Optional[TypeLike] = None,
    ) -> Optional[ir.Local]:
        """Non-virtual call (constructors, ``super.m()``)."""
        return self.invoke(
            base, class_name, method_name, args, returns, kind=ir.InvokeKind.SPECIAL
        )

    def invoke_interface(
        self,
        base: ir.Value,
        class_name: str,
        method_name: str,
        args: Sequence[ValueLike] = (),
        returns: Optional[TypeLike] = None,
    ) -> Optional[ir.Local]:
        return self.invoke(
            base, class_name, method_name, args, returns, kind=ir.InvokeKind.INTERFACE
        )

    def invoke_static(
        self,
        class_name: str,
        method_name: str,
        args: Sequence[ValueLike] = (),
        returns: Optional[TypeLike] = None,
    ) -> Optional[ir.Local]:
        simple_args = [self._simple(a, "arg") for a in args]
        expr = ir.InvokeExpr(
            ir.InvokeKind.STATIC, None, class_name, method_name, simple_args
        )
        return self._finish_invoke(expr, returns)

    def invoke_dynamic(
        self,
        base: ir.Value,
        method_name: str = "<dynamic>",
        args: Sequence[ValueLike] = (),
        returns: Optional[TypeLike] = None,
    ) -> Optional[ir.Local]:
        """Reflective/dynamic-proxy call site that static analysis cannot
        resolve (paper §V-B)."""
        base_local = self._base_local(base)
        simple_args = [self._simple(a, "arg") for a in args]
        expr = ir.InvokeExpr(
            ir.InvokeKind.DYNAMIC, base_local, "<unresolved>", method_name, simple_args
        )
        return self._finish_invoke(expr, returns)

    def _finish_invoke(
        self, expr: ir.InvokeExpr, returns: Optional[TypeLike]
    ) -> Optional[ir.Local]:
        if returns is None:
            self._append(ir.InvokeStmt(expr))
            return None
        tmp = self._fresh("ret")
        self._append(ir.AssignStmt(tmp, expr))
        return tmp

    def construct(
        self, class_name: str, args: Sequence[ValueLike] = ()
    ) -> ir.Local:
        """``tmp = new C; tmp.<init>(args)`` — allocation plus constructor."""
        obj = self.new(class_name)
        self.invoke_special(obj, class_name, "<init>", args)
        return obj

    # -- control flow -----------------------------------------------------------

    def iff(self, cond: ValueLike, target: str) -> None:
        self._append(ir.IfStmt(self._simple(cond), target))

    def if_eq(self, left: ValueLike, right: ValueLike, target: str) -> None:
        self.iff(self.binop("==", left, right), target)

    def if_ne(self, left: ValueLike, right: ValueLike, target: str) -> None:
        self.iff(self.binop("!=", left, right), target)

    def goto(self, target: str) -> None:
        self._append(ir.GotoStmt(target))

    def switch(
        self, key: ValueLike, cases: Sequence[Tuple[int, str]], default: str
    ) -> None:
        self._append(ir.SwitchStmt(self._simple(key), cases, default))

    def throw(self, value: ValueLike) -> None:
        self._append(ir.ThrowStmt(self._simple(value)))

    def throw_new(self, class_name: str = "java.lang.RuntimeException") -> None:
        self.throw(self.construct(class_name))

    def nop(self) -> None:
        self._append(ir.NopStmt())

    def ret(self, value: ValueLike = None) -> None:
        if value is None and self._method.return_type.is_void:
            self._append(ir.ReturnStmt(None))
        else:
            self._append(ir.ReturnStmt(self._simple(value)))

    # -- context manager ---------------------------------------------------------

    def __enter__(self) -> "MethodBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        self.finish()

    def finish(self) -> JavaMethod:
        """Seal the body, appending an implicit return when needed."""
        if self._finished:
            return self._method
        if self._pending_label is not None:
            self._append(ir.NopStmt())
        if not self._stmts or self._stmts[-1].falls_through:
            if self._method.return_type.is_void:
                self._append(ir.ReturnStmt(None))
            else:
                self._append(ir.ReturnStmt(ir.NullConst()))
        self._method.body = self._stmts
        self._finished = True
        return self._method


class ClassBuilder:
    """Builds one class; obtained from :meth:`ProgramBuilder.cls`."""

    def __init__(
        self,
        name: str,
        extends: Optional[str] = "java.lang.Object",
        implements: Sequence[str] = (),
        modifiers: Modifier = Modifier.PUBLIC,
        interface: bool = False,
        abstract: bool = False,
    ):
        if interface:
            modifiers |= Modifier.INTERFACE | Modifier.ABSTRACT
        if abstract:
            modifiers |= Modifier.ABSTRACT
        self._cls = JavaClass(name, extends, tuple(implements), modifiers)
        self._open_methods: List[MethodBuilder] = []

    @property
    def name(self) -> str:
        return self._cls.name

    def lint_ignore(self, *rules: str) -> "ClassBuilder":
        """Suppress the given lint rules for every method of the class."""
        self._cls.lint_suppressions.update(rules)
        return self

    def field(
        self,
        name: str,
        ftype: TypeLike,
        modifiers: Modifier = Modifier.PUBLIC,
        static: bool = False,
        transient: bool = False,
    ) -> JavaField:
        if static:
            modifiers |= Modifier.STATIC
        if transient:
            modifiers |= Modifier.TRANSIENT
        return self._cls.add_field(JavaField(name, _as_type(ftype), modifiers))

    def method(
        self,
        name: str,
        params: Sequence[TypeLike] = (),
        returns: TypeLike = "void",
        modifiers: Modifier = Modifier.PUBLIC,
        static: bool = False,
        param_names: Optional[Sequence[str]] = None,
    ) -> MethodBuilder:
        if static:
            modifiers |= Modifier.STATIC
        method = JavaMethod(
            name,
            [_as_type(p) for p in params],
            _as_type(returns),
            modifiers,
            param_names,
        )
        self._cls.add_method(method)
        mb = MethodBuilder(method)
        self._open_methods.append(mb)
        return mb

    def abstract_method(
        self,
        name: str,
        params: Sequence[TypeLike] = (),
        returns: TypeLike = "void",
    ) -> JavaMethod:
        """Declare a body-less method (interface or abstract)."""
        method = JavaMethod(
            name,
            [_as_type(p) for p in params],
            _as_type(returns),
            Modifier.PUBLIC | Modifier.ABSTRACT,
        )
        return self._cls.add_method(method)

    def __enter__(self) -> "ClassBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        self.finish()

    def finish(self) -> JavaClass:
        for mb in self._open_methods:
            mb.finish()
        self._open_methods.clear()
        return self._cls


class ProgramBuilder:
    """Collects classes (optionally tagged with a jar name) into a program."""

    def __init__(self, jar: Optional[str] = None):
        self.jar = jar
        self._classes: Dict[str, JavaClass] = {}
        self._open: List[ClassBuilder] = []

    def cls(
        self,
        name: str,
        extends: Optional[str] = "java.lang.Object",
        implements: Sequence[str] = (),
        interface: bool = False,
        abstract: bool = False,
    ) -> ClassBuilder:
        if name in self._classes:
            raise ClassModelError(f"duplicate class {name}")
        cb = ClassBuilder(
            name, extends, implements, interface=interface, abstract=abstract
        )
        self._classes[name] = cb._cls
        cb._cls.jar_name = self.jar
        self._open.append(cb)
        return cb

    def interface(self, name: str, extends_interfaces: Sequence[str] = ()) -> ClassBuilder:
        """Declare an interface (its 'extends' list maps to interface_names)."""
        return self.cls(name, implements=extends_interfaces, interface=True)

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def add_class(self, cls: JavaClass) -> JavaClass:
        if cls.name in self._classes:
            raise ClassModelError(f"duplicate class {cls.name}")
        if cls.jar_name is None:
            cls.jar_name = self.jar
        self._classes[cls.name] = cls
        return cls

    def build(self) -> List[JavaClass]:
        """Seal all open builders and return the class list."""
        for cb in self._open:
            cb.finish()
        self._open.clear()
        return list(self._classes.values())

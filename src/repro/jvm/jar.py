"""Jar archives for jasm classes.

A *jar* in this reproduction is a zip archive whose entries are
``.jasm`` files (one per class, named after the class with ``/`` package
separators, exactly like ``.class`` entries in real jars) plus a
``META-INF/MANIFEST.MF`` recording the archive name and class count.

:class:`JarArchive` is the in-memory form; :func:`write_jar` /
:func:`read_jar` move it to and from disk.  :func:`load_classpath`
reads a directory of jars the way Tabby's CLI consumes a dependency
folder.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import JarError
from repro.jvm import jasm
from repro.jvm.model import JavaClass

__all__ = ["JarArchive", "write_jar", "read_jar", "load_classpath"]

_MANIFEST_PATH = "META-INF/MANIFEST.MF"


class JarArchive:
    """A named collection of classes (the unit Table VIII counts)."""

    def __init__(self, name: str, classes: Iterable[JavaClass] = ()):
        if not name:
            raise JarError("jar name must be non-empty")
        self.name = name
        self._classes: Dict[str, JavaClass] = {}
        for cls in classes:
            self.add(cls)

    def add(self, cls: JavaClass) -> JavaClass:
        if cls.name in self._classes:
            raise JarError(f"{self.name}: duplicate class {cls.name}")
        cls.jar_name = self.name
        self._classes[cls.name] = cls
        return cls

    @property
    def classes(self) -> List[JavaClass]:
        return list(self._classes.values())

    @property
    def class_names(self) -> List[str]:
        return list(self._classes)

    def get(self, name: str) -> Optional[JavaClass]:
        return self._classes.get(name)

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __repr__(self) -> str:
        return f"JarArchive({self.name!r}, {len(self)} classes)"

    # -- size accounting (Table VIII reports "code amount (MB)") ----------

    def code_size_bytes(self) -> int:
        """Total size of the serialised jasm text of all classes."""
        return sum(len(jasm.dump_class(c).encode()) for c in self.classes)


def _entry_name(class_name: str) -> str:
    return class_name.replace(".", "/") + ".jasm"


def write_jar(archive: JarArchive, path: str) -> None:
    """Write ``archive`` to ``path`` as a zip of jasm entries."""
    manifest = (
        "Manifest-Version: 1.0\n"
        f"Archive-Name: {archive.name}\n"
        f"Class-Count: {len(archive)}\n"
    )
    try:
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(_MANIFEST_PATH, manifest)
            for cls in archive.classes:
                zf.writestr(_entry_name(cls.name), jasm.dump_class(cls))
    except OSError as exc:
        raise JarError(f"cannot write jar {path}: {exc}") from exc


def read_jar(path: str) -> JarArchive:
    """Read a jar archive previously written by :func:`write_jar`."""
    name = os.path.splitext(os.path.basename(path))[0]
    try:
        with zipfile.ZipFile(path, "r") as zf:
            names = zf.namelist()
            if _MANIFEST_PATH in names:
                manifest = zf.read(_MANIFEST_PATH).decode()
                for line in manifest.splitlines():
                    if line.startswith("Archive-Name:"):
                        name = line.split(":", 1)[1].strip()
            archive = JarArchive(name)
            for entry in names:
                if not entry.endswith(".jasm"):
                    continue
                source = zf.read(entry).decode()
                for cls in jasm.loads(source):
                    archive.add(cls)
            return archive
    except (OSError, zipfile.BadZipFile) as exc:
        raise JarError(f"cannot read jar {path}: {exc}") from exc


def load_classpath(paths: Sequence[str]) -> List[JarArchive]:
    """Load jars from files and/or directories of ``*.jar`` files."""
    archives: List[JarArchive] = []
    for path in paths:
        if os.path.isdir(path):
            for entry in sorted(os.listdir(path)):
                if entry.endswith(".jar"):
                    archives.append(read_jar(os.path.join(path, entry)))
        elif os.path.isfile(path):
            archives.append(read_jar(path))
        else:
            raise JarError(f"classpath entry not found: {path}")
    return archives

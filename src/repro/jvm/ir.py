"""Jimple-like three-address intermediate representation.

This is the Soot/Jimple replacement.  A method body is a flat list of
:class:`Statement`; control transfers name a label carried by the target
statement.  The statement forms cover exactly the rules of Table IV in
the paper (original assignment, new, field store/load, static store/load,
array store/load, cast, return, invoke-assign, invoke) plus the control
statements (if/goto/switch/throw) needed for realistic bodies.

Values are deliberately simple: bases of field/array references are
locals, and invoke arguments are locals or constants — the "three
address" discipline Soot's Jimple enforces.  The builder DSL
(:mod:`repro.jvm.builder`) keeps that invariant for authored code.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.jvm import types as jt

__all__ = [
    # values
    "Value",
    "Local",
    "ThisRef",
    "ParamRef",
    "Constant",
    "IntConst",
    "StringConst",
    "NullConst",
    "ClassConst",
    "InstanceFieldRef",
    "StaticFieldRef",
    "ArrayRef",
    # expressions
    "Expr",
    "NewExpr",
    "NewArrayExpr",
    "CastExpr",
    "InstanceOfExpr",
    "BinOpExpr",
    "InvokeExpr",
    "InvokeKind",
    # statements
    "Statement",
    "IdentityStmt",
    "AssignStmt",
    "InvokeStmt",
    "ReturnStmt",
    "IfStmt",
    "GotoStmt",
    "SwitchStmt",
    "ThrowStmt",
    "NopStmt",
]


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value:
    """Base class of all IR values."""

    def locals_used(self) -> Tuple["Local", ...]:
        """Locals read when this value is evaluated."""
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class Local(Value):
    """A method-local variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise IRError("local name must be non-empty")
        self.name = name

    def locals_used(self) -> Tuple["Local", ...]:
        return (self,)

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Local) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("local", self.name))


class ThisRef(Value):
    """``@this`` — the receiver of an instance method."""

    __slots__ = ()

    def __str__(self) -> str:
        return "@this"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ThisRef)

    def __hash__(self) -> int:
        return hash("@this")


class ParamRef(Value):
    """``@param-i`` — the i-th method parameter (1-based, as in the paper)."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        if index < 1:
            raise IRError("parameter index is 1-based")
        self.index = index

    def __str__(self) -> str:
        return f"@param-{self.index}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ParamRef) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("@param", self.index))


class Constant(Value):
    """Base class of constants."""

    __slots__ = ()


class IntConst(Constant):
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntConst) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("int", self.value))


class StringConst(Constant):
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __str__(self) -> str:
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringConst) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("str", self.value))


class NullConst(Constant):
    __slots__ = ()

    def __str__(self) -> str:
        return "null"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullConst)

    def __hash__(self) -> int:
        return hash("null")


class ClassConst(Constant):
    """A ``Foo.class`` literal."""

    __slots__ = ("class_name",)

    def __init__(self, class_name: str):
        self.class_name = class_name

    def __str__(self) -> str:
        return f"class {self.class_name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassConst) and other.class_name == self.class_name

    def __hash__(self) -> int:
        return hash(("class", self.class_name))


class InstanceFieldRef(Value):
    """``base.field`` — instance field access (load or store position)."""

    __slots__ = ("base", "field_name")

    def __init__(self, base: Local, field_name: str):
        if not isinstance(base, Local):
            raise IRError("field base must be a local (three-address form)")
        self.base = base
        self.field_name = field_name

    def locals_used(self) -> Tuple[Local, ...]:
        return (self.base,)

    def __str__(self) -> str:
        return f"{self.base}.{self.field_name}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InstanceFieldRef)
            and other.base == self.base
            and other.field_name == self.field_name
        )

    def __hash__(self) -> int:
        return hash(("ifield", self.base, self.field_name))


class StaticFieldRef(Value):
    """``Class.field`` — static field access."""

    __slots__ = ("class_name", "field_name")

    def __init__(self, class_name: str, field_name: str):
        self.class_name = class_name
        self.field_name = field_name

    def __str__(self) -> str:
        return f"{self.class_name}.{self.field_name}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StaticFieldRef)
            and other.class_name == self.class_name
            and other.field_name == self.field_name
        )

    def __hash__(self) -> int:
        return hash(("sfield", self.class_name, self.field_name))


class ArrayRef(Value):
    """``base[index]`` — array element access."""

    __slots__ = ("base", "index")

    def __init__(self, base: Local, index: Value):
        if not isinstance(base, Local):
            raise IRError("array base must be a local (three-address form)")
        if not isinstance(index, (Local, IntConst)):
            raise IRError("array index must be a local or int constant")
        self.base = base
        self.index = index

    def locals_used(self) -> Tuple[Local, ...]:
        used: List[Local] = [self.base]
        used.extend(self.index.locals_used())
        return tuple(used)

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayRef)
            and other.base == self.base
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash(("aref", self.base, self.index))


# ---------------------------------------------------------------------------
# Expressions (right-hand sides)
# ---------------------------------------------------------------------------


class Expr(Value):
    """Base class of compound right-hand-side expressions."""

    __slots__ = ()


class NewExpr(Expr):
    """``new ClassName`` — allocation (paper: destroys controllability)."""

    __slots__ = ("class_name",)

    def __init__(self, class_name: str):
        self.class_name = class_name

    def __str__(self) -> str:
        return f"new {self.class_name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NewExpr) and other.class_name == self.class_name

    def __hash__(self) -> int:
        return hash(("new", self.class_name))


class NewArrayExpr(Expr):
    """``newarray T[size]``."""

    __slots__ = ("element_type", "size")

    def __init__(self, element_type: jt.JavaType, size: Value):
        self.element_type = element_type
        self.size = size

    def locals_used(self) -> Tuple[Local, ...]:
        return self.size.locals_used()

    def __str__(self) -> str:
        return f"newarray {self.element_type.name}[{self.size}]"


class CastExpr(Expr):
    """``(T) op`` — forced type conversion (controllability passes through)."""

    __slots__ = ("target_type", "op")

    def __init__(self, target_type: jt.JavaType, op: Value):
        self.target_type = target_type
        self.op = op

    def locals_used(self) -> Tuple[Local, ...]:
        return self.op.locals_used()

    def __str__(self) -> str:
        return f"({self.target_type.name}) {self.op}"


class InstanceOfExpr(Expr):
    """``op instanceof T``."""

    __slots__ = ("op", "check_type")

    def __init__(self, op: Value, check_type: jt.JavaType):
        self.op = op
        self.check_type = check_type

    def locals_used(self) -> Tuple[Local, ...]:
        return self.op.locals_used()

    def __str__(self) -> str:
        return f"{self.op} instanceof {self.check_type.name}"


_BINOPS = {"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&", "|", "^"}


class BinOpExpr(Expr):
    """``left op right`` for arithmetic and comparison operators."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Value, right: Value):
        if op not in _BINOPS:
            raise IRError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def locals_used(self) -> Tuple[Local, ...]:
        return self.left.locals_used() + self.right.locals_used()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


class InvokeKind:
    """Invocation kinds, mirroring JVM invoke instructions."""

    VIRTUAL = "virtual"
    SPECIAL = "special"
    STATIC = "static"
    INTERFACE = "interface"
    DYNAMIC = "dynamic"  # used to model reflective/proxy dispatch

    ALL = (VIRTUAL, SPECIAL, STATIC, INTERFACE, DYNAMIC)


class InvokeExpr(Expr):
    """A method invocation.

    ``class_name``/``method_name``/len(args) identify the static callee;
    virtual/interface dispatch is resolved against the class hierarchy
    later.  ``base`` is None for static invokes.  ``DYNAMIC`` marks
    reflective or dynamic-proxy call sites whose true callee a static
    analyser cannot resolve (paper §V-B); all analysers in this repo
    treat them as opaque.
    """

    __slots__ = ("kind", "base", "class_name", "method_name", "args")

    def __init__(
        self,
        kind: str,
        base: Optional[Value],
        class_name: str,
        method_name: str,
        args: Sequence[Value] = (),
    ):
        if kind not in InvokeKind.ALL:
            raise IRError(f"unknown invoke kind {kind!r}")
        if kind == InvokeKind.STATIC and base is not None:
            raise IRError("static invoke must not have a base")
        if kind in (InvokeKind.VIRTUAL, InvokeKind.SPECIAL, InvokeKind.INTERFACE):
            if not isinstance(base, (Local, ThisRef)):
                raise IRError(f"{kind} invoke base must be a local or @this")
        for a in args:
            if isinstance(a, Expr):
                raise IRError("invoke arguments must be simple values")
        self.kind = kind
        self.base = base
        self.class_name = class_name
        self.method_name = method_name
        self.args: Tuple[Value, ...] = tuple(args)

    @property
    def arity(self) -> int:
        return len(self.args)

    def locals_used(self) -> Tuple[Local, ...]:
        used: List[Local] = []
        if self.base is not None:
            used.extend(self.base.locals_used())
        for a in self.args:
            used.extend(a.locals_used())
        return tuple(used)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        target = f"{self.class_name}.{self.method_name}"
        if self.base is not None:
            return f"{self.kind} {self.base}.<{target}>({args})"
        return f"{self.kind} <{target}>({args})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class of IR statements.

    ``label`` names this statement as a branch target; ``line`` is an
    optional source-position hint used in diagnostics.
    """

    def __init__(self, label: Optional[str] = None, line: int = 0):
        self.label = label
        self.line = line

    def branch_targets(self) -> Tuple[str, ...]:
        """Labels this statement may transfer control to."""
        return ()

    @property
    def falls_through(self) -> bool:
        """Whether control may continue to the next statement."""
        return True

    def invoke_expr(self) -> Optional[InvokeExpr]:
        """The invocation performed by this statement, if any."""
        return None

    def _prefix(self) -> str:
        return f"{self.label}: " if self.label else ""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class IdentityStmt(Statement):
    """``local := @this`` / ``local := @param-i`` (Jimple identity)."""

    def __init__(self, local: Local, ref: Value, **kw):
        super().__init__(**kw)
        if not isinstance(ref, (ThisRef, ParamRef)):
            raise IRError("identity statement assigns @this or @param-i")
        self.local = local
        self.ref = ref

    def __str__(self) -> str:
        return f"{self._prefix()}{self.local} := {self.ref}"


class AssignStmt(Statement):
    """``target = rhs`` covering the assignment rows of Table IV.

    ``target`` is a :class:`Local`, :class:`InstanceFieldRef`,
    :class:`StaticFieldRef` or :class:`ArrayRef`; ``rhs`` is any value
    or expression (including :class:`InvokeExpr` for
    ``a = b.func(c)``).
    """

    def __init__(self, target: Value, rhs: Value, **kw):
        super().__init__(**kw)
        if not isinstance(target, (Local, InstanceFieldRef, StaticFieldRef, ArrayRef)):
            raise IRError(f"invalid assignment target: {target!r}")
        if isinstance(target, (InstanceFieldRef, StaticFieldRef, ArrayRef)):
            if isinstance(rhs, Expr):
                raise IRError("field/array stores take simple values (3-addr form)")
        self.target = target
        self.rhs = rhs

    def invoke_expr(self) -> Optional[InvokeExpr]:
        return self.rhs if isinstance(self.rhs, InvokeExpr) else None

    def __str__(self) -> str:
        return f"{self._prefix()}{self.target} = {self.rhs}"


class InvokeStmt(Statement):
    """A bare method call, ``b.func(c);``."""

    def __init__(self, expr: InvokeExpr, **kw):
        super().__init__(**kw)
        if not isinstance(expr, InvokeExpr):
            raise IRError("InvokeStmt requires an InvokeExpr")
        self.expr = expr

    def invoke_expr(self) -> Optional[InvokeExpr]:
        return self.expr

    def __str__(self) -> str:
        return f"{self._prefix()}{self.expr}"


class ReturnStmt(Statement):
    """``return`` / ``return value``."""

    def __init__(self, value: Optional[Value] = None, **kw):
        super().__init__(**kw)
        if isinstance(value, Expr):
            raise IRError("return takes a simple value (three-address form)")
        self.value = value

    @property
    def falls_through(self) -> bool:
        return False

    def __str__(self) -> str:
        if self.value is None:
            return f"{self._prefix()}return"
        return f"{self._prefix()}return {self.value}"


class IfStmt(Statement):
    """``if cond goto label`` — conditional branch."""

    def __init__(self, cond: Value, target: str, **kw):
        super().__init__(**kw)
        self.cond = cond
        self.target = target

    def branch_targets(self) -> Tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"{self._prefix()}if {self.cond} goto {self.target}"


class GotoStmt(Statement):
    """``goto label`` — unconditional branch."""

    def __init__(self, target: str, **kw):
        super().__init__(**kw)
        self.target = target

    def branch_targets(self) -> Tuple[str, ...]:
        return (self.target,)

    @property
    def falls_through(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self._prefix()}goto {self.target}"


class SwitchStmt(Statement):
    """``switch key { case v: goto label ... default: goto label }``."""

    def __init__(self, key: Value, cases: Sequence[Tuple[int, str]], default: str, **kw):
        super().__init__(**kw)
        self.key = key
        self.cases: Tuple[Tuple[int, str], ...] = tuple(cases)
        self.default = default

    def branch_targets(self) -> Tuple[str, ...]:
        return tuple(label for _, label in self.cases) + (self.default,)

    @property
    def falls_through(self) -> bool:
        return False

    def __str__(self) -> str:
        arms = ", ".join(f"case {v}: goto {l}" for v, l in self.cases)
        return f"{self._prefix()}switch {self.key} {{ {arms}, default: goto {self.default} }}"


class ThrowStmt(Statement):
    """``throw value``."""

    def __init__(self, value: Value, **kw):
        super().__init__(**kw)
        self.value = value

    @property
    def falls_through(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self._prefix()}throw {self.value}"


class NopStmt(Statement):
    """No operation; useful as a labelled join point."""

    def __str__(self) -> str:
        return f"{self._prefix()}nop"


def iter_invoke_exprs(statements: Iterable[Statement]) -> List[InvokeExpr]:
    """All invocation expressions in a statement sequence, in order."""
    out: List[InvokeExpr] = []
    for stmt in statements:
        expr = stmt.invoke_expr()
        if expr is not None:
            out.append(expr)
    return out

"""Per-method control-flow graphs.

Soot generates a control-flow graph for every method during semantic
information extraction (paper §III-B1); this module is that piece.  A
:class:`ControlFlowGraph` partitions a method body into basic blocks and
links them by fall-through, branch, and switch edges.  The
controllability analysis (Algorithm 1) walks statements in a
reverse-post-order linearisation of this graph so that definitions are
seen before uses on acyclic paths.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import CFGError
from repro.jvm import ir
from repro.jvm.model import JavaMethod

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]


class BasicBlock:
    """A maximal straight-line sequence of statements."""

    def __init__(self, index: int, statements: List[ir.Statement]):
        self.index = index
        self.statements = statements
        self.successors: List["BasicBlock"] = []
        self.predecessors: List["BasicBlock"] = []

    @property
    def first(self) -> ir.Statement:
        return self.statements[0]

    @property
    def last(self) -> ir.Statement:
        return self.statements[-1]

    def __repr__(self) -> str:
        succ = [b.index for b in self.successors]
        return f"<BasicBlock {self.index} ({len(self.statements)} stmts) -> {succ}>"


class ControlFlowGraph:
    """Control-flow graph of one method body."""

    def __init__(self, method: JavaMethod, blocks: List[BasicBlock]):
        self.method = method
        self.blocks = blocks

    @property
    def entry(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    @property
    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks with no successors.

        Beware the backward-analysis blind spot: a method that ends in
        an infinite ``goto`` loop has *no* such block — every block has
        a successor — so a backward dataflow seeded only from exit
        blocks would never visit the method.  :mod:`repro.jvm.dataflow`
        therefore seeds backward worklists with every block (a "virtual
        exit" convention); any client that iterates from
        ``exit_blocks`` directly must handle the empty case the same
        way.
        """
        return [b for b in self.blocks if not b.successors]

    def statements(self) -> Iterator[ir.Statement]:
        """All statements in body order."""
        for block in self.blocks:
            yield from block.statements

    def reverse_post_order(self) -> List[BasicBlock]:
        """Blocks in reverse post-order from the entry (forward dataflow
        order); unreachable blocks are appended at the end in body order."""
        if not self.blocks:
            return []
        seen: Set[int] = set()
        post: List[BasicBlock] = []

        def dfs(block: BasicBlock) -> None:
            stack: List[Tuple[BasicBlock, Iterator[BasicBlock]]] = []
            seen.add(block.index)
            stack.append((block, iter(block.successors)))
            while stack:
                current, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ.index not in seen:
                        seen.add(succ.index)
                        stack.append((succ, iter(succ.successors)))
                        advanced = True
                        break
                if not advanced:
                    post.append(current)
                    stack.pop()

        dfs(self.blocks[0])
        order = list(reversed(post))
        for block in self.blocks:
            if block.index not in seen:
                order.append(block)
        return order

    def linearized_statements(self) -> List[ir.Statement]:
        """Statements in reverse-post-order of their blocks."""
        out: List[ir.Statement] = []
        for block in self.reverse_post_order():
            out.extend(block.statements)
        return out

    def branch_count(self) -> int:
        """Number of conditional branch statements (used by decoy metrics)."""
        return sum(
            1
            for stmt in self.statements()
            if isinstance(stmt, (ir.IfStmt, ir.SwitchStmt))
        )

    def __repr__(self) -> str:
        name = self.method.name if self.method else "?"
        return f"<ControlFlowGraph {name}: {len(self.blocks)} blocks>"


def _label_index(statements: Sequence[ir.Statement]) -> Dict[str, int]:
    labels: Dict[str, int] = {}
    for i, stmt in enumerate(statements):
        if stmt.label is not None:
            if stmt.label in labels:
                raise CFGError(f"duplicate label {stmt.label!r}")
            labels[stmt.label] = i
    return labels


def build_cfg(method: JavaMethod) -> ControlFlowGraph:
    """Build the CFG for ``method``.

    Body-less (abstract/native) methods yield an empty graph.
    """
    statements = method.body
    if not statements:
        return ControlFlowGraph(method, [])

    labels = _label_index(statements)

    def resolve(label: str) -> int:
        try:
            return labels[label]
        except KeyError:
            raise CFGError(
                f"{method.name}: branch to undefined label {label!r}"
            ) from None

    # Block leaders: statement 0, branch targets, and fall-through
    # successors of control transfers.
    leaders: Set[int] = {0}
    for i, stmt in enumerate(statements):
        targets = stmt.branch_targets()
        for label in targets:
            leaders.add(resolve(label))
        if targets or not stmt.falls_through:
            if i + 1 < len(statements):
                leaders.add(i + 1)

    ordered = sorted(leaders)
    starts = {start: blk for blk, start in enumerate(ordered)}
    blocks: List[BasicBlock] = []
    for blk, start in enumerate(ordered):
        end = ordered[blk + 1] if blk + 1 < len(ordered) else len(statements)
        blocks.append(BasicBlock(blk, list(statements[start:end])))

    def block_of(stmt_index: int) -> BasicBlock:
        return blocks[starts[stmt_index]]

    for blk, start in enumerate(ordered):
        block = blocks[blk]
        last = block.last
        succs: List[BasicBlock] = []
        for label in last.branch_targets():
            succs.append(block_of(resolve(label)))
        if last.falls_through:
            end = start + len(block.statements)
            if end < len(statements):
                succs.append(block_of(end))
        # dedupe, preserving order
        seen: Set[int] = set()
        for succ in succs:
            if succ.index not in seen:
                seen.add(succ.index)
                block.successors.append(succ)
                succ.predecessors.append(block)

    return ControlFlowGraph(method, blocks)
